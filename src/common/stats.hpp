// Small statistics helpers for benchmarks and simulations: an online
// mean/min/max accumulator and a percentile sampler that is exact below a
// retention cap and switches to uniform reservoir sampling above it, so
// long simulations stay O(cap) in memory instead of O(events).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace wdoc {

class Summary {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    double m = mean();
    return std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0, sum_sq_ = 0, min_ = 0, max_ = 0;
};

// Percentiles over retained samples. Exact while the number of added
// values is within `max_samples`; beyond that, classic Algorithm-R
// reservoir sampling keeps a uniform subsample of everything seen, bounding
// memory while keeping quantile estimates unbiased. Deterministic for a
// given add() sequence (fixed internal RNG seed).
class Percentiles {
 public:
  static constexpr std::size_t kDefaultMaxSamples = 64 * 1024;

  explicit Percentiles(std::size_t max_samples = kDefaultMaxSamples)
      : max_samples_(max_samples == 0 ? 1 : max_samples), rng_(0x9e3779b97f4a7c15ULL) {}

  void add(double x) {
    ++seen_;
    if (samples_.size() < max_samples_) {
      samples_.push_back(x);
      sorted_ = false;
      return;
    }
    // Reservoir: keep x with probability max_samples / seen, replacing a
    // uniformly chosen retained sample.
    std::uint64_t slot = rng_.next() % seen_;
    if (slot < max_samples_) {
      samples_[static_cast<std::size_t>(slot)] = x;
      sorted_ = false;
    }
  }

  // q in [0, 1]; nearest-rank. 0 with no samples.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    WDOC_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    if (rank > 0) --rank;
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  [[nodiscard]] double p50() { return quantile(0.50); }
  [[nodiscard]] double p90() { return quantile(0.90); }
  [[nodiscard]] double p99() { return quantile(0.99); }
  // Values added (equals retained() until the cap is reached).
  [[nodiscard]] std::size_t count() const { return static_cast<std::size_t>(seen_); }
  [[nodiscard]] std::size_t retained() const { return samples_.size(); }
  [[nodiscard]] std::size_t max_samples() const { return max_samples_; }

 private:
  std::vector<double> samples_;
  std::size_t max_samples_;
  std::uint64_t seen_ = 0;
  SplitMix64 rng_;
  bool sorted_ = true;
};

}  // namespace wdoc

// Small statistics helpers for benchmarks and simulations: an online
// mean/min/max accumulator and an exact-percentile sampler (stores samples;
// fine at experiment scale).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace wdoc {

class Summary {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    double m = mean();
    return std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0, sum_sq_ = 0, min_ = 0, max_ = 0;
};

// Exact percentiles over retained samples.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  // q in [0, 1]; nearest-rank. 0 with no samples.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    WDOC_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    if (rank > 0) --rank;
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  [[nodiscard]] double p50() { return quantile(0.50); }
  [[nodiscard]] double p90() { return quantile(0.90); }
  [[nodiscard]] double p99() { return quantile(0.99); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace wdoc

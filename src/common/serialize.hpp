// Byte-level serialization for wdoc wire and log formats.
//
// Fixed-width little-endian integers plus length-prefixed strings/blobs.
// Writer appends to an owned buffer; Reader walks a borrowed span and fails
// with Errc::corrupt instead of reading past the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace wdoc {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void raw(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit Reader(const Bytes& data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8() {
    if (remaining() < 1) return underflow();
    return data_[pos_++];
  }
  [[nodiscard]] Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] Result<std::int64_t> i64() {
    auto r = read_le<std::uint64_t>();
    if (!r) return r.error();
    return static_cast<std::int64_t>(r.value());
  }
  [[nodiscard]] Result<double> f64() {
    auto r = read_le<std::uint64_t>();
    if (!r) return r.error();
    double v;
    std::uint64_t bits = r.value();
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] Result<bool> boolean() {
    auto r = u8();
    if (!r) return r.error();
    return r.value() != 0;
  }

  // Reads a u32 element count and sanity-checks it against the bytes left:
  // each element needs at least `min_element_bytes`, so any larger count is
  // corruption. Use this before reserving — a hostile count must never
  // drive an allocation.
  [[nodiscard]] Result<std::uint32_t> count(std::size_t min_element_bytes = 1) {
    auto n = u32();
    if (!n) return n;
    if (static_cast<std::uint64_t>(n.value()) * min_element_bytes > remaining()) {
      return Error{Errc::corrupt, "implausible element count"};
    }
    return n;
  }

  [[nodiscard]] Result<std::string> str() {
    auto n = u32();
    if (!n) return n.error();
    if (remaining() < n.value()) return underflow();
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n.value());
    pos_ += n.value();
    return s;
  }
  [[nodiscard]] Result<Bytes> bytes() {
    auto n = u32();
    if (!n) return n.error();
    if (remaining() < n.value()) return underflow();
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n.value()));
    pos_ += n.value();
    return b;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> read_le() {
    if (remaining() < sizeof(T)) return Error{Errc::corrupt, "buffer underflow"};
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
  [[nodiscard]] static Error underflow() { return {Errc::corrupt, "buffer underflow"}; }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace wdoc

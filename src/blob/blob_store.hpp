// Content-addressed, reference-counted BLOB store — the paper's BLOB layer.
//
// "Objects in this layer are shared by instances and classes" (§3): two
// documents that put the same bytes get the same BlobId, and the store
// accounts unique (stored) vs logical (sum of references) bytes, which is
// exactly the quantity experiment E4 measures.
//
// Synthetic blobs carry a declared size but no payload, so a simulation can
// model thousands of 10 MB videos without allocating them.
//
// Unreferenced blobs are kept until gc() — they model the paper's "buffer
// spaces" that ephemeral lecture copies occupy until reclaimed (§4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "blob/chunk.hpp"
#include "blob/media.hpp"
#include "common/hash.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"
#include "net/payload.hpp"

namespace wdoc::blob {

struct BlobInfo {
  BlobId id;
  Digest128 digest;
  MediaType type = MediaType::other;
  std::uint64_t size = 0;
  std::uint32_t refs = 0;
  bool resident = false;  // false for synthetic blobs (size-only)
};

class BlobStore {
 public:
  static constexpr std::uint64_t kUnlimited = ~0ull;

  explicit BlobStore(std::uint64_t capacity_bytes = kUnlimited)
      : capacity_(capacity_bytes) {}
  // Unwinds this store's contribution to the process-wide byte gauges, so
  // short-lived per-run stores don't leave them drifting.
  ~BlobStore();
  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  // Disk-backed store: resident blob payloads are written to
  // <dir>/<digest-hex>.blob and reloaded (lazily) on open. Existing blob
  // files are indexed with zero references — owners re-reference them
  // during their own recovery (see core::WebDocDb). Synthetic blobs are
  // never persisted.
  [[nodiscard]] static Result<std::unique_ptr<BlobStore>> open(
      const std::string& dir, std::uint64_t capacity_bytes = kUnlimited);

  // Stores (or dedups against) real bytes; the returned blob holds one
  // reference for the caller.
  [[nodiscard]] Result<BlobId> put(Bytes data, MediaType type);
  // Size-only entry for simulations. Two puts of the same digest dedup.
  [[nodiscard]] Result<BlobId> put_synthetic(const Digest128& digest, std::uint64_t size,
                                             MediaType type);

  [[nodiscard]] Status add_ref(BlobId id);
  // Drops one reference. The blob's bytes stay resident (buffer space) until
  // gc() unless `evict_now`.
  [[nodiscard]] Status release(BlobId id, bool evict_now = false);

  // Lazily faults disk-backed payloads into memory on first access.
  [[nodiscard]] Result<std::span<const std::uint8_t>> get(BlobId id);
  [[nodiscard]] const BlobInfo* info(BlobId id) const;
  [[nodiscard]] std::optional<BlobId> find(const Digest128& digest) const;

  // Frees every zero-reference blob; returns bytes reclaimed.
  [[nodiscard]] std::uint64_t gc();

  // --- partial assembly (chunked transfers) -----------------------------
  // A partial tracks a blob mid-transfer: a bitmap of verified chunks and
  // (for real transfers) the reassembly buffer. When the last chunk lands
  // the blob is re-verified against its whole-content digest and promoted
  // to a regular zero-reference entry (buffer space a document instance
  // claims later, exactly like a completed single-shot blob fetch); a
  // failed whole-blob check resets the partial instead of accepting.
  struct PartialInfo {
    Digest128 digest;
    std::uint64_t size = 0;
    MediaType type = MediaType::other;
    std::uint32_t chunk_bytes = 0;
    std::uint32_t chunks_total = 0;
    std::uint32_t chunks_have = 0;
  };
  enum class ChunkAdd : std::uint8_t {
    accepted = 0,   // new chunk verified and recorded
    duplicate = 1,  // chunk (or whole blob) already present
    completed = 2,  // this chunk finished the blob; it is now a store entry
  };

  // Starts (or re-finds) assembly state for `digest`. Returns false when the
  // blob is already complete in the store, true when a partial now exists.
  // An existing partial with different geometry is an invalid_argument.
  [[nodiscard]] Result<bool> begin_partial(const Digest128& digest, std::uint64_t size,
                                           MediaType type, std::uint32_t chunk_bytes);
  // Verifies and records one chunk. `data` empty = synthetic chunk (the
  // expected digest is then synthetic_chunk_digest(digest, index)). A digest
  // or bounds mismatch is Errc::corrupt and never sets the bitmap bit.
  [[nodiscard]] Result<ChunkAdd> add_chunk(const Digest128& digest, std::uint32_t index,
                                           const Digest128& chunk_digest,
                                           std::span<const std::uint8_t> data);
  [[nodiscard]] const PartialInfo* partial(const Digest128& digest) const;
  [[nodiscard]] bool has_chunk(const Digest128& digest, std::uint32_t index,
                               std::uint32_t chunk_bytes) const;
  // Up to `max` missing chunk indices, ascending (empty for unknown digests).
  [[nodiscard]] std::vector<std::uint32_t> missing_chunks(const Digest128& digest,
                                                          std::uint32_t max) const;
  // Bytes of chunk `index` as a zero-copy slice into the blob's shared
  // buffer — one lecture buffer per blob, whether complete or a partial
  // mid-assembly; serving a chunk bumps a refcount, never copies. Empty
  // payload when the chunk is synthetic. Errc::unavailable when the chunk
  // is not held locally. The slice stays valid (and its bytes immutable)
  // across promotion, eviction, and store destruction: promotion moves the
  // same shared buffer into the complete entry, and the refcount keeps
  // evicted buffers alive until the last slice drops.
  [[nodiscard]] Result<net::Payload> chunk_payload(const Digest128& digest, std::uint32_t index,
                                                   std::uint32_t chunk_bytes);
  void drop_partial(const Digest128& digest);
  // Snapshot of this store's possession of `digest`'s chunks, packed one
  // bit per chunk into `words` starting at absolute bit `bit_offset` (the
  // swarm layer concatenates every blob of a manifest into one
  // transfer-wide bitmap). A complete entry sets every bit, a partial
  // mirrors its assembly bitmap, an unknown digest sets none. `words`
  // must already be sized to cover bit_offset + chunk_count bits;
  // geometry mismatches (different chunk_bytes) contribute nothing.
  void chunk_bits(const Digest128& digest, std::uint64_t size, std::uint32_t chunk_bytes,
                  std::uint64_t bit_offset, std::vector<std::uint64_t>& words) const;
  [[nodiscard]] std::size_t partial_count() const { return partials_.size(); }
  [[nodiscard]] std::uint64_t partial_bytes() const { return partial_bytes_; }

  // --- accounting -------------------------------------------------------
  // Unique bytes on disk.
  [[nodiscard]] std::uint64_t stored_bytes() const { return stored_bytes_; }
  // What a copy-per-reference design would store: sum over blobs of
  // refs * size.
  [[nodiscard]] std::uint64_t logical_bytes() const { return logical_bytes_; }
  [[nodiscard]] std::size_t blob_count() const { return blobs_.size(); }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

 private:
  // Payload buffers are shared (net::Payload slices alias them), so an
  // entry's data is a shared_ptr: replacing or dropping it never moves
  // bytes out from under an outstanding slice.
  struct Entry {
    BlobInfo info;
    std::shared_ptr<Bytes> data;  // null for synthetic and not-yet-faulted blobs
    bool on_disk = false;         // payload exists at blob_path(digest)
    bool loaded = false;          // data holds the payload
  };

  struct Partial {
    PartialInfo info;
    std::vector<bool> have;  // verified chunks
    std::vector<bool> real;  // chunks whose payload bytes are in `data`
    // The lecture buffer: sized once (to the whole blob) on the first real
    // chunk and never reallocated, so verified-chunk slices handed out by
    // chunk_payload stay valid while later chunks land around them. Null
    // while the transfer is synthetic.
    std::shared_ptr<Bytes> data;
    bool any_real = false;
  };

  [[nodiscard]] Result<BlobId> put_entry(const Digest128& digest, std::uint64_t size,
                                         MediaType type, std::shared_ptr<Bytes> data,
                                         bool resident);
  [[nodiscard]] Result<ChunkAdd> promote_partial(Partial& p);
  [[nodiscard]] std::string blob_path(const Digest128& digest) const;
  void remove_entry_files(const Entry& e);

  std::unordered_map<std::uint64_t, Entry> blobs_;  // by id value
  std::unordered_map<Digest128, BlobId> by_digest_;
  std::map<Digest128, Partial> partials_;  // ordered: deterministic iteration
  std::uint64_t partial_bytes_ = 0;
  IdAllocator<BlobId> ids_;
  std::uint64_t capacity_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t logical_bytes_ = 0;
  std::string dir_;  // empty = memory-only
};

}  // namespace wdoc::blob

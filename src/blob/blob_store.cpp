#include "blob/blob_store.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace wdoc::blob {

namespace {

// Process-wide aggregates across every BlobStore (one per station in the
// simulations): gauges track deltas so they sum correctly over stores.
struct BlobMetrics {
  obs::Counter& puts;
  obs::Counter& dedup_hits;
  obs::Counter& evictions;
  obs::Gauge& stored_bytes;
  obs::Gauge& logical_bytes;

  static BlobMetrics& get() {
    static BlobMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new BlobMetrics{
          reg.counter("blob.puts"),        reg.counter("blob.dedup_hits"),
          reg.counter("blob.evictions"),   reg.gauge("blob.stored_bytes"),
          reg.gauge("blob.logical_bytes"),
      };
    }();
    return *m;
  }
};

}  // namespace

namespace fs = std::filesystem;

namespace {

Status write_file(const std::string& path, const Bytes& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {Errc::io_error, "cannot write blob: " + path};
  bool ok = data.empty() || std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return {Errc::io_error, "blob write failed: " + path};
  return Status::ok();
}

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Error{Errc::io_error, "cannot read blob: " + path};
  Bytes out;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    out.insert(out.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return out;
}

MediaType guess_media_type(std::uint64_t size) {
  // Reopened blob files carry no media tag; classify by size band so disk
  // accounting by type stays plausible. Owners that care re-attach the type.
  if (size >= (4ull << 20)) return MediaType::video;
  if (size >= (1ull << 20)) return MediaType::audio;
  if (size >= (64ull << 10)) return MediaType::image;
  return MediaType::other;
}

}  // namespace

Result<std::unique_ptr<BlobStore>> BlobStore::open(const std::string& dir,
                                                   std::uint64_t capacity_bytes) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Error{Errc::io_error, "cannot create blob dir: " + dir};

  auto store = std::make_unique<BlobStore>(capacity_bytes);
  store->dir_ = dir;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() != 37 || name.substr(32) != ".blob") continue;
    auto digest = Digest128::from_hex(name.substr(0, 32));
    if (!digest) continue;
    Entry e;
    e.info.id = store->ids_.next();
    e.info.digest = *digest;
    e.info.size = entry.file_size();
    e.info.type = guess_media_type(e.info.size);
    e.info.refs = 0;  // owners re-reference during their recovery
    e.info.resident = true;
    e.on_disk = true;
    e.loaded = false;
    store->stored_bytes_ += e.info.size;
    store->by_digest_.emplace(e.info.digest, e.info.id);
    store->blobs_.emplace(e.info.id.value(), std::move(e));
  }
  return store;
}

std::string BlobStore::blob_path(const Digest128& digest) const {
  return dir_ + "/" + digest.to_hex() + ".blob";
}

void BlobStore::remove_entry_files(const Entry& e) {
  if (e.on_disk && !dir_.empty()) {
    std::error_code ec;
    fs::remove(blob_path(e.info.digest), ec);
  }
}

BlobStore::~BlobStore() {
  BlobMetrics::get().stored_bytes.sub(static_cast<std::int64_t>(stored_bytes_));
  BlobMetrics::get().logical_bytes.sub(static_cast<std::int64_t>(logical_bytes_));
}

Result<BlobId> BlobStore::put(Bytes data, MediaType type) {
  Digest128 digest = digest128(std::span<const std::uint8_t>(data));
  const std::uint64_t size = data.size();
  return put_entry(digest, size, type, std::make_shared<Bytes>(std::move(data)),
                   /*resident=*/true);
}

Result<BlobId> BlobStore::put_synthetic(const Digest128& digest, std::uint64_t size,
                                        MediaType type) {
  return put_entry(digest, size, type, nullptr, /*resident=*/false);
}

Result<BlobId> BlobStore::put_entry(const Digest128& digest, std::uint64_t size,
                                    MediaType type, std::shared_ptr<Bytes> data,
                                    bool resident) {
  if (auto it = by_digest_.find(digest); it != by_digest_.end()) {
    Entry& e = blobs_.at(it->second.value());
    ++e.info.refs;
    logical_bytes_ += e.info.size;
    BlobMetrics::get().dedup_hits.inc();
    BlobMetrics::get().logical_bytes.add(static_cast<std::int64_t>(e.info.size));
    // A synthetic entry upgraded with real bytes becomes resident.
    if (resident && !e.info.resident) {
      e.data = std::move(data);
      e.info.resident = true;
      e.loaded = true;
      if (!dir_.empty()) {
        WDOC_TRY(write_file(blob_path(digest), *e.data));
        e.on_disk = true;
      }
    }
    return e.info.id;
  }
  if (capacity_ != kUnlimited && stored_bytes_ + size > capacity_) {
    return Error{Errc::out_of_space,
                 "blob store full: " + std::to_string(stored_bytes_) + " + " +
                     std::to_string(size) + " > " + std::to_string(capacity_)};
  }
  BlobId id = ids_.next();
  Entry e;
  e.info = BlobInfo{id, digest, type, size, 1, resident};
  if (resident && !dir_.empty()) {
    WDOC_TRY(write_file(blob_path(digest), *data));
    e.on_disk = true;
  }
  e.data = std::move(data);
  e.loaded = resident;
  stored_bytes_ += size;
  logical_bytes_ += size;
  BlobMetrics::get().puts.inc();
  BlobMetrics::get().stored_bytes.add(static_cast<std::int64_t>(size));
  BlobMetrics::get().logical_bytes.add(static_cast<std::int64_t>(size));
  by_digest_.emplace(digest, id);
  blobs_.emplace(id.value(), std::move(e));
  return id;
}

Status BlobStore::add_ref(BlobId id) {
  auto it = blobs_.find(id.value());
  if (it == blobs_.end()) return {Errc::not_found, "no blob " + std::to_string(id.value())};
  ++it->second.info.refs;
  logical_bytes_ += it->second.info.size;
  BlobMetrics::get().logical_bytes.add(static_cast<std::int64_t>(it->second.info.size));
  return Status::ok();
}

Status BlobStore::release(BlobId id, bool evict_now) {
  auto it = blobs_.find(id.value());
  if (it == blobs_.end()) return {Errc::not_found, "no blob " + std::to_string(id.value())};
  BlobInfo& info = it->second.info;
  if (info.refs == 0) return {Errc::conflict, "release of zero-ref blob"};
  --info.refs;
  logical_bytes_ -= info.size;
  BlobMetrics::get().logical_bytes.sub(static_cast<std::int64_t>(info.size));
  if (info.refs == 0 && evict_now) {
    stored_bytes_ -= info.size;
    BlobMetrics::get().evictions.inc();
    BlobMetrics::get().stored_bytes.sub(static_cast<std::int64_t>(info.size));
    remove_entry_files(it->second);
    by_digest_.erase(info.digest);
    blobs_.erase(it);
  }
  return Status::ok();
}

Result<std::span<const std::uint8_t>> BlobStore::get(BlobId id) {
  auto it = blobs_.find(id.value());
  if (it == blobs_.end()) return Error{Errc::not_found, "no blob " + std::to_string(id.value())};
  Entry& e = it->second;
  if (!e.info.resident) {
    return Error{Errc::unavailable, "synthetic blob has no payload"};
  }
  if (!e.loaded) {
    auto data = read_file(blob_path(e.info.digest));
    if (!data) return data.error();
    e.data = std::make_shared<Bytes>(std::move(data).value());
    e.loaded = true;
  }
  return std::span<const std::uint8_t>(*e.data);
}

const BlobInfo* BlobStore::info(BlobId id) const {
  auto it = blobs_.find(id.value());
  return it == blobs_.end() ? nullptr : &it->second.info;
}

std::optional<BlobId> BlobStore::find(const Digest128& digest) const {
  auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return std::nullopt;
  return it->second;
}

// --- partial assembly --------------------------------------------------------

Result<bool> BlobStore::begin_partial(const Digest128& digest, std::uint64_t size,
                                      MediaType type, std::uint32_t chunk_bytes) {
  if (size == 0) return Error{Errc::invalid_argument, "partial of empty blob"};
  if (chunk_bytes == 0 || chunk_bytes > kMaxChunkBytes) {
    return Error{Errc::invalid_argument,
                 "bad chunk size " + std::to_string(chunk_bytes)};
  }
  if (by_digest_.contains(digest)) return false;  // already complete
  auto it = partials_.find(digest);
  if (it != partials_.end()) {
    const PartialInfo& p = it->second.info;
    if (p.size != size || p.chunk_bytes != chunk_bytes) {
      return Error{Errc::invalid_argument, "partial geometry mismatch for " + digest.to_hex()};
    }
    return true;
  }
  Partial p;
  p.info = PartialInfo{digest, size, type, chunk_bytes, chunk_count(size, chunk_bytes), 0};
  p.have.assign(p.info.chunks_total, false);
  p.real.assign(p.info.chunks_total, false);
  partials_.emplace(digest, std::move(p));
  return true;
}

Result<BlobStore::ChunkAdd> BlobStore::promote_partial(Partial& p) {
  const PartialInfo& info = p.info;
  bool all_real = p.any_real && static_cast<std::uint32_t>(std::count(
                                    p.real.begin(), p.real.end(), true)) == info.chunks_total;
  if (all_real) {
    // Whole-blob integrity gate: per-chunk digests already passed, but the
    // declared blob digest is the contract — reject and restart assembly
    // rather than ever accepting bytes under the wrong content address.
    if (digest128(std::span<const std::uint8_t>(*p.data)) != info.digest) {
      p.have.assign(info.chunks_total, false);
      p.real.assign(info.chunks_total, false);
      p.info.chunks_have = 0;
      partial_bytes_ -= info.size;
      p.any_real = false;
      // Drop our reference; the allocation dies when (if) the last served
      // slice does. A fresh buffer is minted on the next real chunk, so
      // outstanding slices of the rejected assembly are never overwritten.
      p.data.reset();
      return Error{Errc::corrupt,
                   "reassembled blob failed whole-content verification: " + info.digest.to_hex()};
    }
  }
  // Promotion hands the partial's shared buffer to the complete entry —
  // the same allocation, so slices served mid-assembly remain valid.
  Result<BlobId> id = all_real ? put_entry(info.digest, info.size, info.type,
                                           std::move(p.data), /*resident=*/true)
                               : put_synthetic(info.digest, info.size, info.type);
  if (!id) return id.error();  // e.g. out of space; partial stays for a retry
  // The assembled blob is buffer space until a document instance claims it —
  // the same zero-reference contract a completed single-shot fetch leaves.
  WDOC_TRY(release(id.value()));
  if (p.any_real) partial_bytes_ -= info.size;
  partials_.erase(info.digest);
  return ChunkAdd::completed;
}

Result<BlobStore::ChunkAdd> BlobStore::add_chunk(const Digest128& digest, std::uint32_t index,
                                                 const Digest128& chunk_digest,
                                                 std::span<const std::uint8_t> data) {
  if (by_digest_.contains(digest)) return ChunkAdd::duplicate;  // blob complete
  auto it = partials_.find(digest);
  if (it == partials_.end()) {
    return Error{Errc::not_found, "no partial for " + digest.to_hex()};
  }
  Partial& p = it->second;
  if (index >= p.info.chunks_total) {
    return Error{Errc::corrupt, "chunk index " + std::to_string(index) + " out of range"};
  }
  const std::uint32_t expect = chunk_size_at(p.info.size, index, p.info.chunk_bytes);
  if (data.empty()) {
    if (chunk_digest != synthetic_chunk_digest(digest, index)) {
      return Error{Errc::corrupt, "synthetic chunk digest mismatch"};
    }
  } else {
    if (data.size() != expect) {
      return Error{Errc::corrupt, "chunk size " + std::to_string(data.size()) +
                                      " != expected " + std::to_string(expect)};
    }
    if (real_chunk_digest(data) != chunk_digest) {
      return Error{Errc::corrupt, "chunk payload digest mismatch"};
    }
  }
  if (p.have[index]) return ChunkAdd::duplicate;
  p.have[index] = true;
  ++p.info.chunks_have;
  if (!data.empty()) {
    if (!p.any_real) {
      // The lecture buffer: one allocation covering the whole blob, sized
      // here and never reallocated (served slices alias into it).
      p.data = std::make_shared<Bytes>(p.info.size, 0);
      partial_bytes_ += p.info.size;
      p.any_real = true;
    }
    // The single memcpy of a chunk's life on this station: assembly into
    // the lecture buffer. Every subsequent serve/relay is a slice of it.
    std::copy(data.begin(), data.end(),
              p.data->begin() + static_cast<std::ptrdiff_t>(chunk_offset(index, p.info.chunk_bytes)));
    p.real[index] = true;
  }
  if (p.info.chunks_have == p.info.chunks_total) return promote_partial(p);
  return ChunkAdd::accepted;
}

const BlobStore::PartialInfo* BlobStore::partial(const Digest128& digest) const {
  auto it = partials_.find(digest);
  return it == partials_.end() ? nullptr : &it->second.info;
}

bool BlobStore::has_chunk(const Digest128& digest, std::uint32_t index,
                          std::uint32_t chunk_bytes) const {
  if (auto id = find(digest); id.has_value()) {
    const BlobInfo* i = info(*id);
    return i != nullptr && index < chunk_count(i->size, chunk_bytes);
  }
  auto it = partials_.find(digest);
  return it != partials_.end() && it->second.info.chunk_bytes == chunk_bytes &&
         index < it->second.info.chunks_total && it->second.have[index];
}

std::vector<std::uint32_t> BlobStore::missing_chunks(const Digest128& digest,
                                                     std::uint32_t max) const {
  std::vector<std::uint32_t> out;
  auto it = partials_.find(digest);
  if (it == partials_.end()) return out;
  const Partial& p = it->second;
  for (std::uint32_t i = 0; i < p.info.chunks_total && out.size() < max; ++i) {
    if (!p.have[i]) out.push_back(i);
  }
  return out;
}

Result<net::Payload> BlobStore::chunk_payload(const Digest128& digest, std::uint32_t index,
                                              std::uint32_t chunk_bytes) {
  if (chunk_bytes == 0 || chunk_bytes > kMaxChunkBytes) {
    return Error{Errc::invalid_argument, "bad chunk size"};
  }
  if (auto id = find(digest); id.has_value()) {
    const BlobInfo* i = info(*id);
    if (i == nullptr || index >= chunk_count(i->size, chunk_bytes)) {
      return Error{Errc::unavailable, "chunk index out of range"};
    }
    if (!i->resident) return net::Payload{};  // synthetic: size-only chunk
    // Fault the payload in (disk-backed stores) before slicing.
    auto span = get(*id);
    if (!span) return span.error();
    const Entry& e = blobs_.at(id->value());
    const std::uint64_t off = chunk_offset(index, chunk_bytes);
    const std::uint32_t len = chunk_size_at(i->size, index, chunk_bytes);
    return net::Payload::wrap(e.data, off, len);
  }
  auto it = partials_.find(digest);
  if (it == partials_.end() || it->second.info.chunk_bytes != chunk_bytes ||
      index >= it->second.info.chunks_total || !it->second.have[index]) {
    return Error{Errc::unavailable, "chunk not held locally"};
  }
  const Partial& p = it->second;
  if (!p.real[index]) return net::Payload{};  // received synthetically
  const std::uint64_t off = chunk_offset(index, chunk_bytes);
  const std::uint32_t len = chunk_size_at(p.info.size, index, chunk_bytes);
  return net::Payload::wrap(p.data, off, len);
}

void BlobStore::chunk_bits(const Digest128& digest, std::uint64_t size,
                           std::uint32_t chunk_bytes, std::uint64_t bit_offset,
                           std::vector<std::uint64_t>& words) const {
  if (chunk_bytes == 0) return;
  const std::uint32_t total = chunk_count(size, chunk_bytes);
  auto set_bit = [&](std::uint64_t i) {
    const std::uint64_t bit = bit_offset + i;
    if (bit / 64 < words.size()) words[bit / 64] |= std::uint64_t{1} << (bit % 64);
  };
  if (find(digest).has_value()) {
    for (std::uint32_t i = 0; i < total; ++i) set_bit(i);
    return;
  }
  auto it = partials_.find(digest);
  if (it == partials_.end()) return;
  const Partial& p = it->second;
  if (p.info.chunk_bytes != chunk_bytes || p.info.chunks_total != total) return;
  for (std::uint32_t i = 0; i < total; ++i) {
    if (p.have[i]) set_bit(i);
  }
}

void BlobStore::drop_partial(const Digest128& digest) {
  auto it = partials_.find(digest);
  if (it == partials_.end()) return;
  if (it->second.any_real) partial_bytes_ -= it->second.info.size;
  partials_.erase(it);
}

std::uint64_t BlobStore::gc() {
  std::uint64_t reclaimed = 0;
  for (auto it = blobs_.begin(); it != blobs_.end();) {
    if (it->second.info.refs == 0) {
      reclaimed += it->second.info.size;
      stored_bytes_ -= it->second.info.size;
      BlobMetrics::get().evictions.inc();
      BlobMetrics::get().stored_bytes.sub(static_cast<std::int64_t>(it->second.info.size));
      remove_entry_files(it->second);
      by_digest_.erase(it->second.info.digest);
      it = blobs_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

}  // namespace wdoc::blob

// Media types of the paper's BLOB layer: "video, audio, still image,
// animation, and MIDI files" (§3), plus the small document-layer file kinds.
#pragma once

#include <cstdint>
#include <string_view>

namespace wdoc::blob {

enum class MediaType : std::uint8_t {
  video = 0,
  audio = 1,
  image = 2,
  animation = 3,
  midi = 4,
  html = 5,        // document-layer: HTML/XML implementation files
  program = 6,     // document-layer: applet / ASP control programs
  annotation = 7,  // document-layer: stored draw-op streams
  other = 8,
};

inline constexpr std::size_t kMediaTypeCount = 9;

[[nodiscard]] constexpr const char* media_type_name(MediaType t) {
  switch (t) {
    case MediaType::video: return "video";
    case MediaType::audio: return "audio";
    case MediaType::image: return "image";
    case MediaType::animation: return "animation";
    case MediaType::midi: return "midi";
    case MediaType::html: return "html";
    case MediaType::program: return "program";
    case MediaType::annotation: return "annotation";
    case MediaType::other: return "other";
  }
  return "?";
}

// True for the large continuous resources that live in the BLOB layer and
// are shared/preloaded; false for the small structure files that are copied
// when a document is duplicated (paper §3: "the duplication process involves
// objects of relatively smaller sizes, such as HTML files").
[[nodiscard]] constexpr bool is_blob_layer(MediaType t) {
  switch (t) {
    case MediaType::video:
    case MediaType::audio:
    case MediaType::image:
    case MediaType::animation:
    case MediaType::midi:
      return true;
    default:
      return false;
  }
}

// Representative 1999-era sizes, used by the workload generator.
[[nodiscard]] constexpr std::uint64_t typical_media_bytes(MediaType t) {
  switch (t) {
    case MediaType::video: return 10ull << 20;      // ~10 MB clip
    case MediaType::audio: return 2ull << 20;       // ~2 MB
    case MediaType::image: return 150ull << 10;     // ~150 KB
    case MediaType::animation: return 500ull << 10; // ~500 KB
    case MediaType::midi: return 12ull << 10;       // ~12 KB
    case MediaType::html: return 8ull << 10;        // ~8 KB
    case MediaType::program: return 40ull << 10;    // ~40 KB
    case MediaType::annotation: return 4ull << 10;  // ~4 KB
    case MediaType::other: return 64ull << 10;
  }
  return 1024;
}

}  // namespace wdoc::blob

// Chunk geometry and integrity for the chunked transfer paths.
//
// A BLOB of `size` bytes splits into fixed-size chunks of `chunk_bytes`
// (the last one ragged). Every chunk carries its own content digest so a
// relay can verify-and-forward chunk k before chunk k+1 arrives; synthetic
// blobs (size-only, no payload — see BlobStore) use a deterministic digest
// derived from the blob digest and the chunk index, so integrity checking
// stays uniform across simulated and real transfers.
#pragma once

#include <cstdint>
#include <span>

#include "common/hash.hpp"

namespace wdoc::blob {

// Hard upper bound on a sane chunk size; wire decoders reject anything
// larger before allocating (a hostile length must never drive an alloc).
inline constexpr std::uint32_t kMaxChunkBytes = 64u << 20;

[[nodiscard]] constexpr std::uint32_t chunk_count(std::uint64_t size,
                                                  std::uint32_t chunk_bytes) {
  if (chunk_bytes == 0) return 0;
  return static_cast<std::uint32_t>((size + chunk_bytes - 1) / chunk_bytes);
}

[[nodiscard]] constexpr std::uint64_t chunk_offset(std::uint32_t index,
                                                   std::uint32_t chunk_bytes) {
  return static_cast<std::uint64_t>(index) * chunk_bytes;
}

// Size of chunk `index` of a `size`-byte blob; 0 for an out-of-range index.
[[nodiscard]] constexpr std::uint32_t chunk_size_at(std::uint64_t size, std::uint32_t index,
                                                    std::uint32_t chunk_bytes) {
  std::uint64_t off = chunk_offset(index, chunk_bytes);
  if (off >= size) return 0;
  std::uint64_t left = size - off;
  return static_cast<std::uint32_t>(left < chunk_bytes ? left : chunk_bytes);
}

// Digest a synthetic chunk inherits from its blob: both endpoints derive it
// independently, so a flipped index or a chunk of the wrong blob still
// fails verification even when no payload crosses the wire.
[[nodiscard]] Digest128 synthetic_chunk_digest(const Digest128& blob, std::uint32_t index);

// Digest of a real chunk's payload bytes.
[[nodiscard]] inline Digest128 real_chunk_digest(std::span<const std::uint8_t> data) {
  return digest128(data);
}

}  // namespace wdoc::blob

#include "blob/chunk.hpp"

namespace wdoc::blob {

Digest128 synthetic_chunk_digest(const Digest128& blob, std::uint32_t index) {
  std::uint64_t lo = hash_combine(blob.lo, 0x5348554e4b000000ull ^ index);
  std::uint64_t hi = hash_combine(blob.hi, hash_combine(lo, index));
  return Digest128{lo, hi};
}

}  // namespace wdoc::blob

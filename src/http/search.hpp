// Federated relevance-ranked search across library instances.
//
// The gateway fronts several VirtualLibrary shards (the paper's per-station
// catalogs); a query fans out to every shard and the hit lists are merged
// into one deduplicated ranking, pazpar2-style (relevance.c computes TF-IDF
// per target, reclists.c merges records by key). Scoring here is classic
// TF-IDF with *global* document frequencies: df(token) counts distinct
// courses across all shards, so a replica on two shards neither inflates
// rarity nor scores twice — duplicates merge to one hit keeping the max
// per-shard score and the replica count.
//
// The merged inverted index is built once at construction (the catalog is
// fixed for the life of a federation; only ledger state changes after
// that), so the per-query path is an accumulator array over integer course
// ids — this is what keeps the gateway's search endpoint in the tens of
// microseconds under the production-load bench.
//
// Determinism: scores are pure functions of the index state accumulated in
// query-token order, and the final order is a stable sort by (score desc,
// course_number asc), so identical catalogs produce byte-identical result
// lists (the repo-wide guarantee).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "library/virtual_library.hpp"

namespace wdoc::http {

struct RankedHit {
  std::string course_number;
  std::string title;
  std::string instructor;
  double score = 0.0;
  std::uint32_t instances = 0;  // shards holding this course (dedup witness)
};

class FederatedSearch {
 public:
  // Snapshots the shards' catalogs into a merged index. Entries added to a
  // shard afterwards are not searchable through this federation.
  explicit FederatedSearch(std::vector<const library::VirtualLibrary*> shards);

  // TF-IDF ranked, merged, deduplicated hits; at most `limit` (0 = all).
  // Exact course-number and instructor-name matches keep their dominant
  // boosts from VirtualLibrary::search so the three retrieval modes of the
  // paper survive federation.
  [[nodiscard]] std::vector<RankedHit> search(const std::string& query,
                                              std::size_t limit = 0) const;

  // Distinct courses across shards (the N in idf = ln((1+N)/(1+df)) + 1).
  [[nodiscard]] std::size_t corpus_size() const { return courses_.size(); }

 private:
  struct CourseInfo {
    const library::LibraryEntry* entry = nullptr;
    std::uint32_t instances = 0;
  };
  struct TokenPostings {
    double idf = 0.0;
    // (course id, tf weight = 1 + log2(max tf across replicas)), sorted by
    // course id so accumulation order is deterministic.
    std::vector<std::pair<std::uint32_t, double>> postings;
  };

  std::vector<CourseInfo> courses_;  // id -> merged course (id = sorted rank)
  std::unordered_map<std::string, std::uint32_t> course_ids_;
  std::unordered_map<std::string, TokenPostings> index_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> instructors_;
};

}  // namespace wdoc::http

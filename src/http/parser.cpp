#include "http/parser.hpp"

#include <algorithm>
#include <cctype>

namespace wdoc::http {

namespace {

// Trims optional whitespace (SP / HTAB) from both ends of a header value.
std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool token_equals_ci(std::string_view value, std::string_view want) {
  if (value.size() != want.size()) return false;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) != want[i]) return false;
  }
  return true;
}

// Strict non-negative decimal parse; rejects empty, sign, and overflow past
// `cap`. Returns false on any malformation.
bool parse_content_length(std::string_view s, std::size_t cap, std::size_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::size_t>(c - '0');
    if (v > cap) {
      out = v;  // let the caller distinguish "over cap" from "garbage"
      return true;
    }
  }
  out = v;
  return true;
}

}  // namespace

bool RequestParser::feed(std::string_view data) {
  if (poisoned_) return false;
  if (buf_.size() - pos_ + data.size() > limits_.max_buffer()) return false;
  // Compact the consumed prefix before growing so long-lived keep-alive
  // connections don't accumulate dead bytes.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data.data(), data.size());
  return true;
}

ParseStatus RequestParser::fail(int status, std::string detail) {
  poisoned_ = true;
  error_status_ = status;
  error_ = std::move(detail);
  return ParseStatus::error;
}

ParseStatus RequestParser::next(Request& out) {
  if (poisoned_) return ParseStatus::error;
  std::string_view view = std::string_view(buf_).substr(pos_);

  // --- request line --------------------------------------------------------
  std::size_t line_end = view.find("\r\n");
  if (line_end == std::string_view::npos) {
    if (view.size() > limits_.max_request_line) {
      return fail(414, "request line exceeds " +
                           std::to_string(limits_.max_request_line) + " bytes");
    }
    return ParseStatus::need_more;
  }
  if (line_end > limits_.max_request_line) {
    return fail(414, "request line exceeds " +
                         std::to_string(limits_.max_request_line) + " bytes");
  }
  std::string_view request_line = view.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 = sp1 == std::string_view::npos
                        ? std::string_view::npos
                        : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  std::string_view method_tok = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  int version_minor;
  if (version == "HTTP/1.1") {
    version_minor = 1;
  } else if (version == "HTTP/1.0") {
    version_minor = 0;
  } else {
    return fail(400, "unsupported version: " + std::string(version));
  }

  // --- header block --------------------------------------------------------
  std::size_t headers_begin = line_end + 2;
  std::size_t block_end = view.find("\r\n\r\n", line_end);
  if (block_end == std::string_view::npos) {
    if (view.size() - headers_begin > limits_.max_header_bytes) {
      return fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return ParseStatus::need_more;
  }
  std::size_t body_begin = block_end + 4;
  if (body_begin - headers_begin > limits_.max_header_bytes) {
    return fail(431, "header block exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  Request req;
  req.method_token = std::string(method_tok);
  req.method = method_from(method_tok);
  req.target = std::string(target);
  req.version_minor = version_minor;

  std::size_t header_count = 0;
  // block_end < headers_begin when the terminator directly follows the
  // request line, i.e. a request with no headers at all.
  std::string_view headers =
      block_end > headers_begin ? view.substr(headers_begin, block_end - headers_begin)
                                : std::string_view{};
  // `headers` excludes the final CRLF pair; iterate CRLF-separated lines.
  while (!headers.empty()) {
    std::size_t eol = headers.find("\r\n");
    std::string_view line = headers.substr(0, eol);
    headers = eol == std::string_view::npos ? std::string_view{}
                                            : headers.substr(eol + 2);
    if (line.empty()) return fail(400, "empty header line inside block");
    if (++header_count > limits_.max_headers) {
      return fail(431, "more than " + std::to_string(limits_.max_headers) +
                           " header lines");
    }
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return fail(400, "whitespace in header name");
    }
    std::string_view value = trim_ows(line.substr(colon + 1));
    // Later duplicates win; the gateway only reads singleton headers.
    req.headers[to_lower(name)] = std::string(value);
  }

  // --- body framing --------------------------------------------------------
  if (req.headers.contains("transfer-encoding")) {
    return fail(501, "transfer-encoding not supported");
  }
  std::size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    if (!parse_content_length(it->second, limits_.max_body, content_length)) {
      return fail(400, "malformed content-length");
    }
    if (content_length > limits_.max_body) {
      return fail(413, "body of " + it->second + " bytes exceeds " +
                           std::to_string(limits_.max_body));
    }
  }
  if (view.size() - body_begin < content_length) return ParseStatus::need_more;
  req.body = std::string(view.substr(body_begin, content_length));

  // --- connection semantics ------------------------------------------------
  req.keep_alive = version_minor >= 1;
  if (auto it = req.headers.find("connection"); it != req.headers.end()) {
    if (token_equals_ci(it->second, "close")) req.keep_alive = false;
    if (token_equals_ci(it->second, "keep-alive")) req.keep_alive = true;
  }

  split_target(req.target, req.path, req.query);
  pos_ += body_begin + content_length;
  out = std::move(req);
  return ParseStatus::ready;
}

}  // namespace wdoc::http

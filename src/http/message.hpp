// HTTP/1.1 request/response value types shared by the parser, gateway,
// server, and client (paper's "HTTP front end" north star; pazpar2's
// http_command protocol is the exemplar for the command surface).
//
// Requests are produced only by RequestParser; responses are built by the
// gateway and rendered with serialize(). Header names are stored lowercased
// so lookups are case-insensitive per RFC 7230 §3.2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/payload.hpp"

namespace wdoc::http {

enum class Method : std::uint8_t { get, head, post, put, del, options, other };

[[nodiscard]] const char* method_name(Method m);
[[nodiscard]] Method method_from(std::string_view token);

struct Request {
  Method method = Method::other;
  std::string method_token;             // original token (for `other`)
  std::string target;                   // raw request-target as received
  std::string path;                     // percent-decoded path component
  std::vector<std::pair<std::string, std::string>> query;  // decoded, in order
  int version_minor = 1;                // HTTP/1.<minor>; only 0 and 1 accepted
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
  bool keep_alive = true;               // 1.1 default on, 1.0 default off

  // First query parameter named `key`, if any.
  [[nodiscard]] std::optional<std::string> param(std::string_view key) const;
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

struct Response {
  int status = 200;
  std::map<std::string, std::string> headers;  // Content-Length added on render
  // Refcounted immutable body: a handler serving a stored blob (or a cached
  // render) hands out a slice of the existing buffer instead of copying it
  // into every response. Use text() for string comparisons.
  net::Payload body;
  bool keep_alive = true;  // rendered as the Connection header

  [[nodiscard]] static Response text(int status, std::string body);
  [[nodiscard]] static Response json(int status, std::string body);
  [[nodiscard]] static Response html(int status, std::string body);
};

[[nodiscard]] const char* status_reason(int status);

// Renders the full wire form: status line, headers (sorted; Content-Length
// and Connection synthesized), CRLF, body. Byte-identical for identical
// responses, so same-seed runs produce identical wire traffic.
[[nodiscard]] std::string serialize(const Response& r);

// The wire form up to and including the blank line, without the body — the
// server writes headers and body as two sends, so a large body is never
// copied into a headers+body wire string.
[[nodiscard]] std::string serialize_headers(const Response& r);

// Percent-decodes `in` ('+' becomes space when `plus_as_space`). Invalid or
// truncated %XX escapes are passed through verbatim rather than rejected —
// the gateway treats the query string as opaque text, never as bytes to
// re-interpret, so lenient decoding cannot smuggle structure past a check.
[[nodiscard]] std::string percent_decode(std::string_view in, bool plus_as_space);

// Splits "path?k=v&k2=v2" into decoded path and decoded key/value pairs.
void split_target(std::string_view target, std::string& path,
                  std::vector<std::pair<std::string, std::string>>& query);

// Minimal JSON string escaping for gateway response bodies.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace wdoc::http

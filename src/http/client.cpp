#include "http/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace wdoc::http {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

Status HttpClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return {Errc::io_error, std::string("socket: ") + std::strerror(errno)};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return {Errc::invalid_argument, "bad address: " + host};
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s{Errc::unreachable, std::string("connect: ") + std::strerror(errno)};
    close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::ok();
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status HttpClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) return {Errc::unavailable, "not connected"};
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t sent = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return {Errc::io_error, std::string("send: ") + std::strerror(errno)};
    }
    off += static_cast<std::size_t>(sent);
  }
  return Status::ok();
}

Status HttpClient::send_request(std::string_view method, std::string_view target,
                                std::string_view body) {
  std::string req;
  req.reserve(target.size() + body.size() + 96);
  req += method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: wdoc\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    req += "Content-Length: ";
    req += std::to_string(body.size());
    req += "\r\n";
  }
  req += "\r\n";
  req += body;
  return send_raw(req);
}

Result<ClientResponse> HttpClient::read_response() {
  if (fd_ < 0) return Error{Errc::unavailable, "not connected"};

  auto read_more = [&]() -> Status {
    char chunk[16 << 10];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        return Status::ok();
      }
      if (n == 0) return {Errc::io_error, "connection closed mid-response"};
      if (errno == EINTR) continue;
      return {Errc::io_error, std::string("recv: ") + std::strerror(errno)};
    }
  };

  // Header block.
  std::size_t block_end;
  while ((block_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    if (buf_.size() > (1u << 20)) return Error{Errc::corrupt, "oversized response head"};
    WDOC_TRY(read_more());
  }

  ClientResponse rsp;
  std::string_view head(buf_.data(), block_end);
  std::size_t line_end = head.find("\r\n");
  std::string_view status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.substr(0, 7) != "HTTP/1.") {
    return Error{Errc::corrupt, "bad status line: " + std::string(status_line)};
  }
  rsp.status = (status_line[9] - '0') * 100 + (status_line[10] - '0') * 10 +
               (status_line[11] - '0');
  std::string_view headers = line_end == std::string_view::npos
                                 ? std::string_view{}
                                 : head.substr(line_end + 2);
  while (!headers.empty()) {
    std::size_t eol = headers.find("\r\n");
    std::string_view line = headers.substr(0, eol);
    headers = eol == std::string_view::npos ? std::string_view{} : headers.substr(eol + 2);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    rsp.headers[to_lower(line.substr(0, colon))] = std::string(value);
  }

  std::size_t content_length = 0;
  if (auto it = rsp.headers.find("content-length"); it != rsp.headers.end()) {
    content_length = static_cast<std::size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
  }
  std::size_t body_begin = block_end + 4;
  while (buf_.size() - body_begin < content_length) WDOC_TRY(read_more());
  rsp.body = buf_.substr(body_begin, content_length);
  buf_.erase(0, body_begin + content_length);

  if (auto it = rsp.headers.find("connection"); it != rsp.headers.end()) {
    rsp.keep_alive = to_lower(it->second) != "close";
  }
  return rsp;
}

Result<ClientResponse> HttpClient::get(std::string_view target) {
  WDOC_TRY(send_request("GET", target));
  return read_response();
}

Result<ClientResponse> HttpClient::post(std::string_view target, std::string_view body) {
  WDOC_TRY(send_request("POST", target, body));
  return read_response();
}

}  // namespace wdoc::http

#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace wdoc::http {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::get: return "GET";
    case Method::head: return "HEAD";
    case Method::post: return "POST";
    case Method::put: return "PUT";
    case Method::del: return "DELETE";
    case Method::options: return "OPTIONS";
    case Method::other: return "OTHER";
  }
  return "OTHER";
}

Method method_from(std::string_view token) {
  if (token == "GET") return Method::get;
  if (token == "HEAD") return Method::head;
  if (token == "POST") return Method::post;
  if (token == "PUT") return Method::put;
  if (token == "DELETE") return Method::del;
  if (token == "OPTIONS") return Method::options;
  return Method::other;
}

std::optional<std::string> Request::param(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

const std::string* Request::header(std::string_view name) const {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  auto it = headers.find(lower);
  return it == headers.end() ? nullptr : &it->second;
}

Response Response::text(int status, std::string body) {
  Response r;
  r.status = status;
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

Response Response::json(int status, std::string body) {
  Response r;
  r.status = status;
  r.headers["Content-Type"] = "application/json";
  r.body = std::move(body);
  return r;
}

Response Response::html(int status, std::string body) {
  Response r;
  r.status = status;
  r.headers["Content-Type"] = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return status >= 500 ? "Server Error" : "Error";
  }
}

std::string serialize_headers(const Response& r) {
  std::string out;
  out.reserve(128);
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += status_reason(r.status);
  out += "\r\n";
  for (const auto& [name, value] : r.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: ";
  out += r.keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  return out;
}

std::string serialize(const Response& r) {
  std::string out = serialize_headers(r);
  out.append(r.body.text());
  return out;
}

std::string percent_decode(std::string_view in, bool plus_as_space) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+' && plus_as_space) {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < in.size()) {
      int hi = hex_digit(in[i + 1]);
      int lo = hex_digit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(c);  // malformed escape: keep verbatim
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void split_target(std::string_view target, std::string& path,
                  std::vector<std::pair<std::string, std::string>>& query) {
  query.clear();
  std::size_t qpos = target.find('?');
  path = percent_decode(target.substr(0, qpos), /*plus_as_space=*/false);
  if (qpos == std::string_view::npos) return;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    std::size_t amp = qs.find('&');
    std::string_view pair = qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{} : qs.substr(amp + 1);
    if (pair.empty()) continue;
    std::size_t eq = pair.find('=');
    std::string key = percent_decode(pair.substr(0, eq), /*plus_as_space=*/true);
    std::string value = eq == std::string_view::npos
                            ? std::string{}
                            : percent_decode(pair.substr(eq + 1), true);
    query.emplace_back(std::move(key), std::move(value));
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace wdoc::http

// Bounds-checked incremental HTTP/1.1 request parser.
//
// Bytes arrive from the socket in arbitrary fragments (a request may be
// split across reads, or several pipelined requests may land in one read).
// feed() appends to an internal buffer; next() consumes at most one complete
// request per call, so pipelining falls out naturally: call next() until it
// reports need_more, then feed() again.
//
// Every limit is enforced *before* the corresponding scan, so a hostile
// peer can neither balloon memory (buffer is capped by the limits) nor make
// the parser walk unbounded input looking for a terminator. All scanning is
// std::string search within the owned buffer — no raw pointer arithmetic —
// which keeps the fuzz surface (tests/test_decode_fuzz.cpp) ASan-clean by
// construction. Transfer-Encoding is deliberately not implemented; requests
// carrying it are rejected as unsupported rather than mis-framed.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "http/message.hpp"

namespace wdoc::http {

struct ParserLimits {
  std::size_t max_request_line = 8 << 10;   // method + target + version
  std::size_t max_header_bytes = 16 << 10;  // header block incl. terminator
  std::size_t max_headers = 64;             // individual header lines
  std::size_t max_body = 1 << 20;           // Content-Length ceiling

  // Upper bound on buffered-but-unparsed bytes; beyond this feed() refuses
  // input (pipelined requests queue no deeper than this).
  [[nodiscard]] std::size_t max_buffer() const {
    return max_request_line + max_header_bytes + max_body + 4096;
  }
};

enum class ParseStatus : std::uint8_t {
  need_more,  // incomplete request buffered; feed more bytes
  ready,      // one request extracted into `out`
  error,      // malformed or over-limit; connection must be closed
};

class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  // Appends raw socket bytes. Returns false when the buffer cap would be
  // exceeded; the caller should answer 431/413 and close.
  [[nodiscard]] bool feed(std::string_view data);

  // Extracts the next complete pipelined request, if any. After `error`
  // the parser is poisoned: every later call reports `error` too.
  [[nodiscard]] ParseStatus next(Request& out);

  // Human-readable reason for the last error (400 vs 413 vs 431 etc.).
  [[nodiscard]] const std::string& error_detail() const { return error_; }
  // Suggested response status for the last error.
  [[nodiscard]] int error_status() const { return error_status_; }

  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  ParseStatus fail(int status, std::string detail);

  ParserLimits limits_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix; compacted between requests
  bool poisoned_ = false;
  std::string error_;
  int error_status_ = 400;
};

}  // namespace wdoc::http

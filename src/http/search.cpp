#include "http/search.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "obs/request_trace.hpp"

namespace wdoc::http {

FederatedSearch::FederatedSearch(std::vector<const library::VirtualLibrary*> shards) {
  // Merge catalogs: distinct course numbers, in sorted order, become the
  // integer course ids the scoring accumulator indexes by.
  std::map<std::string, CourseInfo> merged;
  for (const auto* shard : shards) {
    for (const auto& [course, entry] : shard->entries()) {
      CourseInfo& info = merged[course];
      if (info.entry == nullptr) info.entry = &entry;
      ++info.instances;
    }
  }
  courses_.reserve(merged.size());
  course_ids_.reserve(merged.size());
  for (const auto& [course, info] : merged) {
    course_ids_.emplace(course, static_cast<std::uint32_t>(courses_.size()));
    courses_.push_back(info);
  }
  const double n_docs = static_cast<double>(courses_.size());

  // Merged postings: per token, tf merges across replicas by max — a course
  // replicated on two shards is one logical document, not two — and df is
  // the number of distinct courses holding the token.
  std::map<std::string, std::map<std::uint32_t, std::uint32_t>> max_tf;
  for (const auto* shard : shards) {
    for (const auto& [token, postings] : shard->keyword_index()) {
      auto& courses = max_tf[token];
      for (const auto& [course, tf] : postings) {
        std::uint32_t& cur = courses[course_ids_.at(course)];
        cur = std::max(cur, tf);
      }
    }
  }
  for (const auto& [token, courses] : max_tf) {
    TokenPostings& entry = index_[token];
    const double df = static_cast<double>(courses.size());
    entry.idf = std::log((1.0 + n_docs) / (1.0 + df)) + 1.0;
    entry.postings.reserve(courses.size());
    for (const auto& [id, tf] : courses) {
      entry.postings.emplace_back(id, 1.0 + std::log2(static_cast<double>(tf)));
    }
  }

  // Instructor map, deduplicated across replicas.
  std::map<std::string, std::set<std::uint32_t>> taught;
  for (const auto* shard : shards) {
    for (const auto& [name, courses] : shard->instructor_index()) {
      auto& ids = taught[name];
      for (const std::string& course : courses) ids.insert(course_ids_.at(course));
    }
  }
  for (const auto& [name, ids] : taught) {
    instructors_[name].assign(ids.begin(), ids.end());
  }
}

std::vector<RankedHit> FederatedSearch::search(const std::string& query,
                                               std::size_t limit) const {
  obs::SpanScope span("search.federated");
  std::vector<double> scores(courses_.size(), 0.0);
  std::vector<std::uint32_t> touched;

  auto bump = [&](std::uint32_t id, double delta) {
    if (scores[id] == 0.0) touched.push_back(id);
    scores[id] += delta;
  };

  // TF-IDF over the merged index; repeated query tokens are deduplicated so
  // "btree btree" scores like "btree".
  const std::vector<std::string> tokens = library::tokenize(query);
  std::set<std::string> seen_tokens;
  for (const std::string& tok : tokens) {
    if (!seen_tokens.insert(tok).second) continue;
    auto it = index_.find(tok);
    if (it == index_.end()) continue;
    for (const auto& [id, tf_weight] : it->second.postings) {
      bump(id, tf_weight * it->second.idf);
    }
  }

  // Retrieval-mode boosts (paper §5: course number and instructor lookups);
  // the merged index already deduplicates replicas, so each applies once.
  if (auto it = course_ids_.find(query); it != course_ids_.end()) {
    bump(it->second, 100.0);
  }
  if (auto it = instructors_.find(query); it != instructors_.end()) {
    for (std::uint32_t id : it->second) bump(id, 10.0);
  }

  // Rank (score, id) pairs and materialize strings only for the returned
  // prefix. Ids were assigned in sorted course-number order, so "id asc" is
  // exactly the documented "course_number asc" tie-break; the comparator is
  // a total order (ids are unique), so the result is deterministic.
  std::vector<std::pair<double, std::uint32_t>> ranked;
  ranked.reserve(touched.size());
  for (std::uint32_t id : touched) {
    if (scores[id] > 0.0) ranked.emplace_back(scores[id], id);
  }
  const auto better = [](const std::pair<double, std::uint32_t>& a,
                         const std::pair<double, std::uint32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  if (limit > 0 && ranked.size() > limit) {
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(limit), ranked.end(),
                      better);
    ranked.resize(limit);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }

  std::vector<RankedHit> hits;
  hits.reserve(ranked.size());
  for (const auto& [score, id] : ranked) {
    const CourseInfo& info = courses_[id];
    RankedHit h;
    h.course_number = info.entry->course_number;
    h.title = info.entry->title;
    h.instructor = info.entry->instructor;
    h.score = score;
    h.instances = info.instances;
    hits.push_back(std::move(h));
  }
  return hits;
}

}  // namespace wdoc::http

#include "http/gateway.hpp"

#include <chrono>
#include <cstdio>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "storage/database.hpp"
#include "storage/query.hpp"

namespace wdoc::http {

namespace {

constexpr const char* kDocTable = "wd_document";

int status_of(const Status& s) {
  if (s.is_ok()) return 200;
  switch (s.error().code) {
    case Errc::not_found: return 404;
    case Errc::already_exists:
    case Errc::conflict: return 409;
    case Errc::invalid_argument: return 400;
    case Errc::unsupported: return 501;
    default: return 500;
  }
}

Response error_json(int status, std::string_view detail) {
  return Response::json(status, "{\"error\":\"" + json_escape(detail) + "\"}");
}

// Scores are doubles; render with fixed precision so identical rankings
// serialize byte-identically across runs and platforms.
std::string format_score(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

std::int64_t now_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --- StorageDocumentSource --------------------------------------------------

StorageDocumentSource::StorageDocumentSource(storage::Database& db) : db_(&db) {
  if (!db.catalog().has_table(kDocTable)) {
    using storage::Column;
    using storage::ValueType;
    storage::Schema schema(kDocTable,
                           {Column{"course_number", ValueType::text, false, false, false},
                            Column{"body", ValueType::text}},
                           /*primary_key=*/"course_number");
    db.create_table(std::move(schema)).expect("create wd_document");
  }
}

Status StorageDocumentSource::put(const std::string& course_number,
                                  const std::string& body) {
  using storage::Value;
  obs::SpanScope span("storage.doc.put");
  std::lock_guard lock(mu_);
  auto existing = db_->query(kDocTable).where_eq("course_number", Value(course_number)).first();
  WDOC_TRY(existing.status());
  if (existing.value().has_value()) {
    return db_->update(kDocTable, existing.value()->id,
                       {Value(course_number), Value(body)});
  }
  return db_->insert(kDocTable, {Value(course_number), Value(body)}).status();
}

Result<std::string> StorageDocumentSource::fetch(const std::string& course_number) {
  using storage::Value;
  obs::SpanScope span("storage.doc.fetch");
  std::lock_guard lock(mu_);
  auto row = db_->query(kDocTable).where_eq("course_number", Value(course_number)).first();
  WDOC_TRY(row.status());
  if (!row.value().has_value()) {
    return Error{Errc::not_found, "no document for " + course_number};
  }
  const auto& values = row.value()->values;
  return values[1].is_null() ? std::string{} : values[1].as_text();
}

// --- Gateway ----------------------------------------------------------------

Gateway::Gateway(GatewayConfig cfg, std::vector<library::VirtualLibrary*> shards,
                 DocumentSource* docs)
    : cfg_(cfg),
      shards_(std::move(shards)),
      search_([&] {
        std::vector<const library::VirtualLibrary*> views;
        views.reserve(shards_.size());
        for (auto* s : shards_) views.push_back(s);
        return FederatedSearch(std::move(views));
      }()),
      docs_(docs),
      slo_(cfg.slo) {
  auto& reg = obs::MetricsRegistry::global();
  for (const char* endpoint : {"search", "check-out", "check-in", "doc", "metrics",
                               "debug", "healthz", "admin", "other"}) {
    endpoint_stats_[endpoint] = EndpointStats{
        &reg.counter("http.requests", {{"endpoint", endpoint}}),
        &reg.histogram("http.request_micros", {{"endpoint", endpoint}})};
  }
  for (int status : {200, 400, 404, 405, 409, 500, 501}) {
    status_counters_[status] =
        &reg.counter("http.responses", {{"status", std::to_string(status)}});
  }
  search_results_ = &reg.counter("http.search.results");
  requests_total_ = &reg.counter("http.requests_total");
  responses_5xx_ = &reg.counter("http.responses_5xx");

  // The gateway is the tracing edge: it owns the process RequestTracer
  // configuration (trace ids restart from zero here, so same-seed runs mint
  // the same ids and promote the same head-sampled set).
  obs::RequestTracer::global().configure(cfg_.trace);

  obs::SloObjective search_slo;
  search_slo.name = "http.search.latency";
  search_slo.target = cfg_.latency_slo_target;
  search_slo.kind = obs::SloObjective::Kind::latency;
  search_slo.histogram = endpoint_stats_["search"].micros;
  search_slo.threshold_micros = cfg_.latency_slo_micros;
  slo_.add(std::move(search_slo));

  obs::SloObjective doc_slo;
  doc_slo.name = "http.doc.latency";
  doc_slo.target = cfg_.latency_slo_target;
  doc_slo.kind = obs::SloObjective::Kind::latency;
  doc_slo.histogram = endpoint_stats_["doc"].micros;
  doc_slo.threshold_micros = cfg_.latency_slo_micros;
  slo_.add(std::move(doc_slo));

  obs::SloObjective avail;
  avail.name = "http.availability";
  avail.target = cfg_.availability_target;
  avail.kind = obs::SloObjective::Kind::availability;
  avail.total = requests_total_;
  avail.bad = responses_5xx_;
  slo_.add(std::move(avail));
}

obs::Counter& Gateway::status_counter(int status) {
  if (auto it = status_counters_.find(status); it != status_counters_.end()) {
    return *it->second;
  }
  return obs::MetricsRegistry::global().counter("http.responses",
                                                {{"status", std::to_string(status)}});
}

Response Gateway::do_search(const Request& req) {
  auto q = req.param("q");
  if (!q.has_value() || q->empty()) return error_json(400, "missing query parameter q");
  std::size_t limit = cfg_.default_search_limit;
  if (auto l = req.param("limit")) {
    std::uint64_t parsed = 0;
    if (!parse_u64(*l, parsed) || parsed == 0) {
      return error_json(400, "limit must be a positive integer");
    }
    limit = std::min<std::size_t>(parsed, cfg_.max_search_limit);
  }

  obs::SpanScope span("gateway.search");
  std::shared_lock lock(mu_);
  std::vector<RankedHit> hits = search_.search(*q, limit);
  const std::size_t corpus = search_.corpus_size();
  lock.unlock();
  span.end(obs::SpanScope::wall_now());

  search_results_->inc(hits.size());

  std::string body = "{\"query\":\"" + json_escape(*q) +
                     "\",\"corpus\":" + std::to_string(corpus) + ",\"hits\":[";
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const RankedHit& h = hits[i];
    if (i > 0) body += ',';
    body += "{\"course\":\"" + json_escape(h.course_number) + "\",\"title\":\"" +
            json_escape(h.title) + "\",\"instructor\":\"" + json_escape(h.instructor) +
            "\",\"score\":" + format_score(h.score) +
            ",\"instances\":" + std::to_string(h.instances) + "}";
  }
  body += "]}";
  return Response::json(200, std::move(body));
}

Response Gateway::do_ledger(const Request& req, bool check_out) {
  auto course = req.param("course");
  auto student = req.param("student");
  if (!course.has_value() || course->empty()) {
    return error_json(400, "missing parameter course");
  }
  std::uint64_t student_id = 0;
  if (!student.has_value() || !parse_u64(*student, student_id) || student_id == 0) {
    return error_json(400, "student must be a positive integer");
  }

  obs::SpanScope span("gateway.ledger");
  std::unique_lock lock(mu_);
  const std::int64_t at = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The mutation applies to every shard replicating the course so replicas
  // stay in lockstep; replicas are consistent, so each returns the same
  // status and reporting the last one is faithful.
  bool found = false;
  Status status = Status::ok();
  for (auto* shard : shards_) {
    if (!shard->entries().contains(*course)) continue;
    found = true;
    status = check_out ? shard->check_out(*course, UserId{student_id}, at)
                       : shard->check_in(*course, UserId{student_id}, at);
  }
  lock.unlock();

  if (!found) return error_json(404, "no course: " + *course);
  if (!status.is_ok()) return error_json(status_of(status), status.error().message);
  return Response::json(
      200, "{\"ok\":true,\"course\":\"" + json_escape(*course) +
               "\",\"student\":" + std::to_string(student_id) +
               ",\"at\":" + std::to_string(at) + "}");
}

Response Gateway::do_doc(const Request& req) {
  auto course = req.param("course");
  if (!course.has_value() || course->empty()) {
    return error_json(400, "missing parameter course");
  }
  {
    std::shared_lock lock(mu_);
    bool known = false;
    for (const auto* shard : shards_) {
      if (shard->entries().contains(*course)) {
        known = true;
        break;
      }
    }
    if (!known) return error_json(404, "no course: " + *course);
  }
  if (docs_ == nullptr) return error_json(404, "no document store attached");
  obs::SpanScope span("gateway.doc");
  Result<std::string> body = docs_->fetch(*course);
  if (!body.is_ok()) {
    return error_json(status_of(body.status()), body.error().message);
  }
  return Response::html(200, std::move(body).value());
}

Response Gateway::do_debug_slo() {
  // Force a fresh evaluation so the answer reflects the instruments as of
  // this request, not the last periodic tick.
  (void)slo_.evaluate(SimTime::micros(now_micros()));
  return Response::json(200, slo_.to_json());
}

void Gateway::maybe_evaluate_slo(std::int64_t now) {
  std::int64_t due = next_slo_eval_.load(std::memory_order_relaxed);
  if (now < due) return;
  // One winner per period; losers skip rather than queueing behind the
  // engine mutex.
  if (!next_slo_eval_.compare_exchange_strong(due, now + slo_.windows().eval_period_micros,
                                              std::memory_order_relaxed)) {
    return;
  }
  (void)slo_.evaluate(SimTime::micros(now));
}

Response Gateway::route(const Request& req, const EndpointStats*& stats) {
  const bool is_get = req.method == Method::get;
  const bool is_post = req.method == Method::post;
  if (req.path == "/search") {
    stats = &endpoint_stats_.at("search");
    if (!is_get) return error_json(405, "use GET /search");
    return do_search(req);
  }
  if (req.path == "/check-out") {
    stats = &endpoint_stats_.at("check-out");
    if (!is_post) return error_json(405, "use POST /check-out");
    return do_ledger(req, /*check_out=*/true);
  }
  if (req.path == "/check-in") {
    stats = &endpoint_stats_.at("check-in");
    if (!is_post) return error_json(405, "use POST /check-in");
    return do_ledger(req, /*check_out=*/false);
  }
  if (req.path == "/doc") {
    stats = &endpoint_stats_.at("doc");
    if (!is_get) return error_json(405, "use GET /doc");
    return do_doc(req);
  }
  if (req.path == "/metrics") {
    stats = &endpoint_stats_.at("metrics");
    if (!is_get) return error_json(405, "use GET /metrics");
    // JSON (not the text table): scrapers get machine-readable samples with
    // explicit histogram bucket boundaries and exemplar trace ids.
    return Response::json(200, obs::to_json(obs::MetricsRegistry::global().snapshot()));
  }
  if (cfg_.enable_debug && req.path == "/debug/slo") {
    stats = &endpoint_stats_.at("debug");
    if (!is_get) return error_json(405, "use GET /debug/slo");
    return do_debug_slo();
  }
  if (req.path == "/healthz") {
    stats = &endpoint_stats_.at("healthz");
    if (!is_get) return error_json(405, "use GET /healthz");
    return Response::text(200, "ok\n");
  }
  if (cfg_.enable_admin && req.path == "/admin/quit") {
    stats = &endpoint_stats_.at("admin");
    if (!is_post) return error_json(405, "use POST /admin/quit");
    quit_.store(true, std::memory_order_release);
    Response r = Response::json(200, "{\"ok\":true,\"quitting\":true}");
    r.keep_alive = false;
    return r;
  }
  stats = &endpoint_stats_.at("other");
  return error_json(404, "no such endpoint: " + req.path);
}

Response Gateway::handle(const Request& req) {
  const std::int64_t t0 = now_micros();
  // Mint the request's TraceContext; spans opened anywhere below (federated
  // search, the storage path, rpcs) buffer provisionally under it.
  obs::TraceContext ctx = obs::RequestTracer::global().start_request(
      std::string(method_name(req.method)) + " " + req.path, SimTime::micros(t0));
  const EndpointStats* stats = nullptr;
  Response rsp = route(req, stats);
  const std::int64_t t1 = now_micros();
  const std::int64_t micros = t1 - t0;

  const bool error = rsp.status >= 500;
  const bool promoted =
      obs::RequestTracer::global().finish_request(ctx, SimTime::micros(t1), error);

  stats->requests->inc();
  requests_total_->inc();
  status_counter(rsp.status).inc();
  if (error) responses_5xx_->inc();
  // Promoted requests stamp their bucket's exemplar: the p99 bucket in an
  // exported snapshot names a concrete trace id that was actually captured.
  stats->micros->observe(static_cast<double>(micros), promoted ? ctx.trace_id : 0);
  if (error || micros > cfg_.slow_request_micros) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::custom,
        "http " + std::string(method_name(req.method)) + " " + req.target + " -> " +
            std::to_string(rsp.status) + " in " + std::to_string(micros) + "us" +
            (promoted ? " trace=" + std::to_string(ctx.trace_id) : ""));
  }
  maybe_evaluate_slo(t1);
  if (!req.keep_alive) rsp.keep_alive = false;
  return rsp;
}

}  // namespace wdoc::http

// Thread-pool HTTP/1.1 server: one acceptor thread, a bounded connection
// queue, and N workers that each own a connection for its keep-alive
// lifetime (pipelined requests are answered in order on the connection).
//
// Backpressure is explicit and two-layered: connections beyond the kernel
// listen backlog queue in the kernel; once the user-space queue is full the
// acceptor answers `503 Service Unavailable` and closes instead of letting
// the queue grow without bound (counted in http.overload_rejects). Parse
// errors answer with the parser's suggested status (400/413/414/431/501)
// and close the connection.
//
// stop() is graceful: the listen socket and every open connection are shut
// down, so workers blocked in recv()/accept() wake immediately and join.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/metrics.hpp"

namespace wdoc::http {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;       // 0 = ephemeral; see HttpServer::port()
  std::size_t workers = 8;
  int listen_backlog = 128;
  std::size_t pending_connections = 64;  // user-space queue; beyond -> 503
  ParserLimits limits;
  // recv() timeout on idle keep-alive connections; expiry closes them.
  int idle_timeout_ms = 5000;
};

class HttpServer {
 public:
  using Handler = std::function<Response(const Request&)>;

  HttpServer(ServerConfig cfg, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and spawns the acceptor + workers.
  [[nodiscard]] Status start();
  // Idempotent; joins every thread before returning.
  void stop();

  // The bound port (after start(); resolves port 0 to the real one).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  void track(int fd, bool add);

  ServerConfig cfg_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::mutex conns_mu_;
  std::set<int> open_conns_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Registry references are stable (obs/metrics.hpp), so the per-request
  // instruments are resolved once instead of per recv/send.
  struct Instruments {
    obs::Counter& bytes_in;
    obs::Counter& bytes_out;
    obs::Counter& parse_errors;
    obs::Counter& connections_opened;
    obs::Counter& overload_rejects;
    obs::Gauge& connections_open;
  };
  Instruments obs_;
};

}  // namespace wdoc::http

// Minimal blocking HTTP/1.1 client for tests, the workload driver, and the
// curl-less smoke paths. Supports keep-alive and pipelining: callers may
// write any number of requests before reading the responses back in order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace wdoc::http {

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
  bool keep_alive = true;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  [[nodiscard]] Status connect(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  // Raw bytes onto the wire (requests may be pre-rendered and batched).
  [[nodiscard]] Status send_raw(std::string_view bytes);
  // Renders and sends one request without reading the response (pipelining).
  [[nodiscard]] Status send_request(std::string_view method, std::string_view target,
                                    std::string_view body = {});
  // Reads the next response off the wire (in pipeline order).
  [[nodiscard]] Result<ClientResponse> read_response();

  // send_request + read_response.
  [[nodiscard]] Result<ClientResponse> get(std::string_view target);
  [[nodiscard]] Result<ClientResponse> post(std::string_view target,
                                            std::string_view body = {});

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received but not yet consumed
};

}  // namespace wdoc::http

#include "http/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

namespace wdoc::http {

namespace {

// Full-buffer send; returns false on any socket error.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

bool send_response(int fd, const Response& rsp, obs::Counter& bytes_out) {
  // Headers and body go out as two sends: the body is a refcounted slice
  // written in place, never copied into a combined wire string.
  const std::string head = serialize_headers(rsp);
  bytes_out.inc(head.size() + rsp.body.size());
  if (!send_all(fd, head.data(), head.size())) return false;
  return rsp.body.empty() ||
         send_all(fd, reinterpret_cast<const char*>(rsp.body.data()),
                  rsp.body.size());
}

}  // namespace

HttpServer::HttpServer(ServerConfig cfg, Handler handler)
    : cfg_(std::move(cfg)),
      handler_(std::move(handler)),
      obs_{obs::MetricsRegistry::global().counter("http.bytes_in"),
           obs::MetricsRegistry::global().counter("http.bytes_out"),
           obs::MetricsRegistry::global().counter("http.parse_errors"),
           obs::MetricsRegistry::global().counter("http.connections_opened"),
           obs::MetricsRegistry::global().counter("http.overload_rejects"),
           obs::MetricsRegistry::global().gauge("http.connections_open")} {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return {Errc::already_exists, "server already started"};
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return {Errc::io_error, std::string("socket: ") + std::strerror(errno)};
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return {Errc::invalid_argument, "bad bind address: " + cfg_.bind_address};
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s{Errc::io_error, std::string("bind: ") + std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    Status s{Errc::io_error, std::string("listen: ") + std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&HttpServer::accept_loop, this);
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back(&HttpServer::worker_loop, this);
  }
  return Status::ok();
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the acceptor out of accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Wake workers blocked in recv() on live connections.
  {
    std::lock_guard lock(conns_mu_);
    for (int fd : open_conns_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Queued-but-unserved connections are dropped on the floor at shutdown.
  {
    std::lock_guard lock(queue_mu_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::track(int fd, bool add) {
  std::lock_guard lock(conns_mu_);
  if (add) {
    open_conns_.insert(fd);
    // A worker racing past stop()'s sweep self-shuts here: the sweep holds
    // conns_mu_, so either the sweep sees this fd or this sees stopping_.
    if (stopping_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RDWR);
  } else {
    open_conns_.erase(fd);
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient (EMFILE, ECONNABORTED): keep serving
    }
    obs_.connections_opened.inc();
    std::unique_lock lock(queue_mu_);
    if (pending_.size() >= cfg_.pending_connections) {
      lock.unlock();
      // Overload: refuse crisply instead of queueing without bound.
      obs_.overload_rejects.inc();
      Response rsp = Response::text(503, "overloaded\n");
      rsp.keep_alive = false;
      (void)send_response(fd, rsp, obs_.bytes_out);
      ::close(fd);
      continue;
    }
    pending_.push_back(fd);
    lock.unlock();
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  obs_.connections_open.add(1);
  track(fd, true);

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = cfg_.idle_timeout_ms / 1000;
  tv.tv_usec = (cfg_.idle_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  RequestParser parser(cfg_.limits);
  char buf[16 << 10];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // timeout (EAGAIN) or error: close the connection
    }
    obs_.bytes_in.inc(static_cast<std::uint64_t>(n));
    if (!parser.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
      obs_.parse_errors.inc();
      Response rsp = Response::text(431, "request buffer limit exceeded\n");
      rsp.keep_alive = false;
      (void)send_response(fd, rsp, obs_.bytes_out);
      break;
    }
    // Drain every pipelined request already buffered, answering in order.
    for (;;) {
      Request req;
      ParseStatus st = parser.next(req);
      if (st == ParseStatus::need_more) break;
      if (st == ParseStatus::error) {
        obs_.parse_errors.inc();
        Response rsp = Response::text(parser.error_status(),
                                      parser.error_detail() + "\n");
        rsp.keep_alive = false;
        (void)send_response(fd, rsp, obs_.bytes_out);
        open = false;
        break;
      }
      Response rsp = handler_(req);
      if (!send_response(fd, rsp, obs_.bytes_out) || !rsp.keep_alive) {
        open = false;
        break;
      }
    }
  }

  track(fd, false);
  ::close(fd);
  obs_.connections_open.sub(1);
}

}  // namespace wdoc::http

// The request/response edge of the reproduction: HTTP/1.1 command surface
// over the virtual library (paper §5) and the document store.
//
// Endpoints (pazpar2's http_command.c is the exemplar for the shape):
//   GET  /search?q=<query>&limit=<n>   ranked, merged, deduplicated hits
//   POST /check-out?course=<c>&student=<id>
//   POST /check-in?course=<c>&student=<id>
//   GET  /doc?course=<c>               document fetch via wdoc::storage
//   GET  /metrics                      obs registry snapshot (JSON, with
//                                      histogram bucket boundaries)
//   GET  /debug/slo                    SLO burn-rate status (JSON, optional)
//   GET  /healthz                      liveness probe
//   POST /admin/quit                   graceful shutdown handshake (optional)
//
// The gateway composes *on top of* the library/storage layers (the HCA
// layering argument in PAPERS.md): it owns no protocol state of theirs,
// only a reader/writer lock serializing catalog mutations against searches.
// Check-out/check-in timestamps come from a logical clock (one tick per
// mutation) so same-seed workloads leave byte-identical ledgers behind.
//
// Observability: every request increments http.requests{endpoint=...},
// http.responses{status=...}, feeds the http.request_micros{endpoint=...}
// log2 histogram, and slow or 5xx requests leave a flight-recorder event.
// The gateway is also the tracing edge: each request gets a TraceContext
// (deterministic head sampling + tail-based capture of slow/erroring
// requests, obs/request_trace.hpp), promoted requests stamp histogram
// exemplars, and an SloEngine evaluates burn-rate alerts once per period.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "http/message.hpp"
#include "http/search.hpp"
#include "library/virtual_library.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/slo.hpp"

namespace wdoc::storage {
class Database;
}

namespace wdoc::http {

// Where /doc bodies come from. The production implementation reads the
// wd_document table of a storage::Database; tests may stub it.
class DocumentSource {
 public:
  virtual ~DocumentSource() = default;
  [[nodiscard]] virtual Result<std::string> fetch(const std::string& course_number) = 0;
};

// DocumentSource over a wdoc::storage Database table
// wd_document(course_number TEXT PRIMARY KEY, body TEXT): fetch is an
// index-driven point query, put an autocommit upsert.
class StorageDocumentSource final : public DocumentSource {
 public:
  explicit StorageDocumentSource(storage::Database& db);
  [[nodiscard]] Status put(const std::string& course_number, const std::string& body);
  [[nodiscard]] Result<std::string> fetch(const std::string& course_number) override;

 private:
  storage::Database* db_;
  mutable std::mutex mu_;  // Database autocommit DML is not thread-safe
};

struct GatewayConfig {
  std::size_t default_search_limit = 10;
  std::size_t max_search_limit = 100;
  // Requests slower than this leave a flight-recorder event.
  std::int64_t slow_request_micros = 50'000;
  bool enable_admin = true;  // expose POST /admin/quit
  bool enable_debug = true;  // expose GET /debug/slo
  // End-to-end tracing: the gateway is the edge that mints TraceContexts
  // (see obs/request_trace.hpp). The constructor installs this into the
  // process-wide RequestTracer.
  obs::RequestTraceConfig trace;
  // SLO evaluation windows (see obs/slo.hpp). Objectives are fixed:
  // http.search.latency and http.doc.latency p99 within latency_slo_micros,
  // http.availability 99.9% non-5xx.
  obs::SloWindows slo;
  std::int64_t latency_slo_micros = 5'000;
  double latency_slo_target = 0.99;
  double availability_target = 0.999;
};

class Gateway {
 public:
  // `shards` are the library instances federated behind /search; mutations
  // route to the shard(s) actually holding the course. `docs` may be null
  // (then /doc answers 404). Neither is owned.
  Gateway(GatewayConfig cfg, std::vector<library::VirtualLibrary*> shards,
          DocumentSource* docs);

  // Thread-safe: any server worker may call concurrently.
  [[nodiscard]] Response handle(const Request& req);

  // Set once POST /admin/quit has been accepted; the serving loop polls it.
  [[nodiscard]] bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::int64_t logical_now() const {
    return clock_.load(std::memory_order_relaxed);
  }

 private:
  // Registry instrument references are stable for the registry's lifetime
  // (see obs/metrics.hpp), so the per-endpoint instruments are resolved once
  // at construction instead of per request — registry lookups build a
  // composite string key and take a shard lock, which is measurable at
  // gateway request rates.
  struct EndpointStats {
    obs::Counter* requests = nullptr;
    obs::Histogram* micros = nullptr;
  };

  [[nodiscard]] Response route(const Request& req, const EndpointStats*& stats);
  [[nodiscard]] Response do_search(const Request& req);
  [[nodiscard]] Response do_ledger(const Request& req, bool check_out);
  [[nodiscard]] Response do_doc(const Request& req);
  [[nodiscard]] Response do_debug_slo();
  [[nodiscard]] obs::Counter& status_counter(int status);
  // Runs SloEngine::evaluate at most once per eval period; any worker may
  // hit the gate, a single CAS winner pays the evaluation.
  void maybe_evaluate_slo(std::int64_t now);

  GatewayConfig cfg_;
  std::vector<library::VirtualLibrary*> shards_;
  FederatedSearch search_;
  DocumentSource* docs_;
  mutable std::shared_mutex mu_;  // read: search/doc; write: check-in/out
  std::atomic<std::int64_t> clock_{0};
  std::atomic<bool> quit_{false};
  std::map<std::string, EndpointStats> endpoint_stats_;  // fixed after ctor
  std::map<int, obs::Counter*> status_counters_;         // fixed after ctor
  obs::Counter* search_results_ = nullptr;
  // Aggregates feeding the availability objective.
  obs::Counter* requests_total_ = nullptr;   // http.requests_total
  obs::Counter* responses_5xx_ = nullptr;    // http.responses_5xx
  obs::SloEngine slo_;
  std::atomic<std::int64_t> next_slo_eval_{0};
};

}  // namespace wdoc::http

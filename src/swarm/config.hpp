// Knobs of the multi-source swarm distribution mode (DESIGN.md §4f).
//
// Swarm mode layers three mechanisms over the PR 4 chunk pipeline: chunks
// striped round-robin across `trees` rotated stripe trees, periodic
// have-bitmap gossip to a bounded deterministic neighbor set, and
// rarest-first pull of chunks whose stripe tree has stalled. All timing
// runs on the fabric clock and all tie-breaks are seeded hashes, so a
// same-seed simulation is byte-identical.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "common/sim_time.hpp"

namespace wdoc::swarm {

struct SwarmConfig {
  // Off by default: broadcast_push falls back to the single-tree chunked
  // pipeline (or store-and-forward when that is disabled too).
  bool enabled = false;
  // Interleaved stripe trees. Chunk g rides tree g % trees; each tree is a
  // rotation of the same full m-ary placement, so a station interior in
  // one tree is (mostly) a leaf in the others and every uplink carries
  // roughly blob_bytes/trees of useful relay work.
  std::uint32_t trees = 2;
  // Cadence of SwarmHave bitmap gossip per active transfer.
  SimTime gossip_interval = SimTime::millis(250);
  // Seeded pseudo-random peers added to each station's neighbor set on top
  // of its stripe-tree relations (bounded-degree overlay shortcuts).
  std::uint32_t extra_peers = 2;
  // Max outstanding swarm chunk requests per neighbor link.
  std::uint32_t link_window = 8;
  // Max outstanding swarm chunk requests across ALL peers — this bounds
  // how much pulled data can pile onto one downlink, which otherwise
  // competes with (and slows) the stripe pipeline itself.
  std::uint32_t pull_window = 12;
  // Max chunk indices carried by one SwarmReq message.
  std::uint32_t request_batch = 32;
  // Paced-send priority mix: after this many consecutive stripe relays, one
  // queued request serve is let through even while relays are pending. With
  // cut-through relaying the relay queue is empty between arrivals, so
  // serves mostly ride those genuinely idle uplink slots; the stride only
  // governs forced preemption during relay *bursts*, where every yielded
  // slot delays an entire downstream chain by a full chunk-time. A fairly
  // moderate stride keeps busy relay chains near line rate (recovery pulls
  // are steered toward idle uplinks by the backlog advert anyway) while
  // still bounding serve starvation when a backlog persists.
  std::uint32_t serve_stride = 4;
  // A stripe tree with no chunk arrival for this long is considered
  // stalled; only then does the scheduler pull its chunks from peers, so a
  // clean pipeline generates zero duplicate traffic. The pipeline delivers
  // a chunk per tree every couple of chunk-times at full utilization, so
  // the timeout sits several chunk-times above that cadence: low enough
  // that an orphaned subtree starts recovering quickly, high enough that
  // normal inter-chunk jitter never trips it (pull mode also latches once
  // tripped, so a borderline timeout cannot oscillate — see scheduler.hpp).
  SimTime stall_timeout = SimTime::seconds(1.8);
  // A tree that has never delivered a chunk is held to this longer grace
  // before counting as stalled: at depth the first stripe chunk takes
  // several pipeline hops to arrive, and treating that ramp-up as a stall
  // would pull chunks the pipeline was about to push anyway.
  SimTime startup_grace = SimTime::seconds(5.0);
  // A planned request not satisfied within this window is forgotten and
  // may be re-planned against another peer. Serves yield to stripe relays
  // at the serving peer, so under congestion a request is a *reservation*
  // that drains when the peer's uplink frees up — the timeout must sit
  // well above worst-case serve latency, or recovery re-requests chunks
  // that are merely queued and the duplicate serves eat the very idle
  // capacity recovery depends on.
  SimTime request_timeout = SimTime::seconds(6.0);
  // Gossip stops once the station and (as far as it has heard) all its
  // neighbors are complete, or after this many completed-but-quiet rounds.
  std::uint32_t idle_rounds = 3;
  // Hard safety cap on gossip rounds per transfer.
  std::uint32_t max_rounds = 4096;

  [[nodiscard]] Status validate() const {
    if (!enabled) return {};
    if (trees == 0 || trees > 64)
      return {Errc::invalid_argument, "swarm.trees must be in [1, 64]"};
    if (gossip_interval <= SimTime::zero())
      return {Errc::invalid_argument, "swarm.gossip_interval must be positive"};
    if (link_window == 0)
      return {Errc::invalid_argument, "swarm.link_window must be >= 1"};
    if (pull_window < link_window)
      return {Errc::invalid_argument, "swarm.pull_window must be >= link_window"};
    if (request_batch == 0)
      return {Errc::invalid_argument, "swarm.request_batch must be >= 1"};
    if (serve_stride == 0)
      return {Errc::invalid_argument, "swarm.serve_stride must be >= 1"};
    if (stall_timeout <= SimTime::zero() || request_timeout <= SimTime::zero())
      return {Errc::invalid_argument, "swarm timeouts must be positive"};
    if (idle_rounds == 0 || max_rounds == 0)
      return {Errc::invalid_argument, "swarm round limits must be >= 1"};
    return {};
  }
};

}  // namespace wdoc::swarm

// Interleaved stripe trees: `trees` rotated copies of the paper's full
// m-ary placement, with chunks striped round-robin across them.
//
// The single broadcast tree wastes (N - interior)/N of the cluster's
// uplink capacity: leaves never forward anything. Stripe tree t keeps the
// instructor (position 1) at the root but rotates the remaining N-1
// stations by t * (N-1)/trees virtual slots before applying the placement
// equations, so a station that is a leaf in one tree is interior in
// another and every uplink relays roughly blob_bytes/trees. The root
// attaches exactly ONE head per tree (virtual slot 1), keeping its total
// uplink at blob_bytes regardless of `trees` — that is what lets the
// swarm makespan approach the VoD paper's bandwidth lower bound
// max(B/C_root, (N-1)B/ΣC) instead of depth * B.
//
// All functions are pure position arithmetic (1-based, like mtree.hpp) and
// therefore identical at every station — no coordination messages are
// needed to agree on the forest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace wdoc::swarm {

// Which stripe tree chunk g (global index) rides.
[[nodiscard]] constexpr std::uint32_t stripe_of(std::uint32_t g, std::uint32_t trees) {
  return trees <= 1 ? 0 : g % trees;
}

// Rotation (in virtual slots over the N-1 non-root stations) of tree t.
[[nodiscard]] std::uint64_t stripe_rotation(std::uint32_t tree, std::uint32_t trees,
                                            std::uint64_t n);

// Parent of position k in stripe tree `tree`; nullopt for the root (k = 1)
// or positions outside [1, n].
[[nodiscard]] std::optional<std::uint64_t> stripe_parent(std::uint64_t k, std::uint32_t tree,
                                                         std::uint32_t trees, std::uint64_t m,
                                                         std::uint64_t n);

// Children of position k in stripe tree `tree` (fan-out m; the root has
// exactly one child — the tree's head — in every tree).
[[nodiscard]] std::vector<std::uint64_t> stripe_children(std::uint64_t k, std::uint32_t tree,
                                                         std::uint32_t trees, std::uint64_t m,
                                                         std::uint64_t n);

}  // namespace wdoc::swarm

#include "swarm/scheduler.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "swarm/stripe_tree.hpp"

namespace wdoc::swarm {

namespace {

// orphaned_ latch values: how a stripe tree entered pull mode.
enum : std::uint8_t { kNotOrphaned = 0, kOrphanLocal = 1, kOrphanCascade = 2 };
// Per-round planning mode of a stripe tree.
enum : std::uint8_t { kFed = 0, kOrphan = 1, kRecovering = 2 };

// Endgame threshold: with this few chunks left in a recovering tree, pull
// them regardless of the feed's claims (see the candidate filter).
constexpr std::uint32_t kEndgameChunks = 2;

}  // namespace

SwarmScheduler::SwarmScheduler(std::uint32_t total_chunks, SwarmConfig cfg,
                               std::uint64_t seed, SimTime now)
    : total_(total_chunks),
      cfg_(cfg),
      seed_(seed),
      self_(total_chunks),
      stripe_parent_(cfg.trees, 0),
      last_progress_(cfg.trees, now),
      progressed_(cfg.trees, 0),
      orphaned_(cfg.trees, 0),
      tree_total_(cfg.trees, 0),
      tree_have_(cfg.trees, 0) {
  for (std::uint32_t g = 0; g < total_chunks; ++g) ++tree_total_[stripe_of(g, cfg.trees)];
}

void SwarmScheduler::set_stripe_parent(std::uint32_t tree, std::uint64_t parent_position) {
  if (tree < stripe_parent_.size()) stripe_parent_[tree] = parent_position;
}

void SwarmScheduler::add_peer(std::uint64_t position) {
  auto [it, inserted] = peers_.try_emplace(position);
  if (inserted) it->second.have.resize(total_);
}

std::vector<std::uint64_t> SwarmScheduler::peer_positions() const {
  std::vector<std::uint64_t> out;
  out.reserve(peers_.size());
  for (const auto& [pos, peer] : peers_) out.push_back(pos);
  return out;
}

void SwarmScheduler::seed_self(const Bitmap& have, SimTime now) {
  self_.merge(have);
  for (auto& t : last_progress_) t = now;
  std::fill(tree_have_.begin(), tree_have_.end(), 0);
  for (std::uint32_t g = 0; g < total_; ++g) {
    if (self_.test(g)) ++tree_have_[stripe_of(g, cfg_.trees)];
  }
}

bool SwarmScheduler::mark_have(std::uint32_t g, SimTime now) {
  if (auto it = inflight_.find(g); it != inflight_.end()) clear_flight(it);
  if (!self_.set(g)) return false;
  const std::uint32_t tree = stripe_of(g, cfg_.trees);
  if (tree < last_progress_.size()) {
    last_progress_[tree] = now;
    progressed_[tree] = 1;
    ++tree_have_[tree];
  }
  return true;
}

void SwarmScheduler::peer_update(std::uint64_t position, const PeerReport& report) {
  add_peer(position);
  Peer& p = peers_[position];
  if (report.have != nullptr) {
    Bitmap incoming;
    incoming.assign_words(*report.have, total_);
    // Possession is monotone; merging (rather than replacing) makes a
    // reordered or stale gossip message harmless.
    const std::uint64_t before = p.have.count();
    p.have.merge(incoming);
    if (p.have.count() > before) p.grew_at = report.now;
  }
  // In-flight requests and backlog are point-in-time readings: replaced.
  if (report.pending != nullptr) p.pending.assign_words(*report.pending, total_);
  p.backlog = report.backlog;
  p.heard_at = report.now;
  // Orphan cascade: our stripe parent announcing pull mode for a tree
  // means the push feed above us is gone — pulled chunks trickle through
  // its uplink instead of streaming, so we pull for ourselves as well
  // (and advertise the same mask to our own children). Latched exactly
  // like a locally-detected stall.
  if (report.recovering != 0) {
    for (std::uint32_t t = 0; t < cfg_.trees; ++t) {
      if (stripe_parent_[t] == position && ((report.recovering >> t) & 1) &&
          orphaned_[t] == kNotOrphaned) {
        orphaned_[t] = kOrphanCascade;
      }
    }
  }
}

void SwarmScheduler::peer_update(std::uint64_t position,
                                 const std::vector<std::uint64_t>& words,
                                 std::uint32_t backlog, SimTime now) {
  PeerReport report;
  report.have = &words;
  report.backlog = backlog;
  report.now = now;
  peer_update(position, report);
}

bool SwarmScheduler::peer_has(std::uint64_t position, std::uint32_t g) const {
  auto it = peers_.find(position);
  return it != peers_.end() && it->second.have.test(g);
}

bool SwarmScheduler::peer_covered(std::uint64_t position, std::uint32_t g) const {
  auto it = peers_.find(position);
  return it != peers_.end() &&
         (it->second.have.test(g) || it->second.pending.test(g));
}

std::vector<std::uint64_t> SwarmScheduler::pending_words() const {
  Bitmap pending(total_);
  for (const auto& [g, flight] : inflight_) pending.set(g);
  return pending.words();
}

std::uint64_t SwarmScheduler::recovering_mask() const {
  std::uint64_t mask = 0;
  for (std::uint32_t t = 0; t < cfg_.trees && t < 64; ++t) {
    if (orphaned_[t] != kNotOrphaned && tree_have_[t] < tree_total_[t]) {
      mask |= std::uint64_t{1} << t;
    }
  }
  return mask;
}

bool SwarmScheduler::peer_complete(std::uint64_t position) const {
  auto it = peers_.find(position);
  return it != peers_.end() && it->second.have.complete();
}

SimTime SwarmScheduler::peer_heard_at(std::uint64_t position) const {
  auto it = peers_.find(position);
  return it == peers_.end() ? SimTime::zero() : it->second.heard_at;
}

bool SwarmScheduler::peers_complete() const {
  for (const auto& [pos, peer] : peers_) {
    if (!peer.have.complete()) return false;
  }
  return true;
}

std::uint64_t SwarmScheduler::state_sum() const {
  std::uint64_t sum = self_.count();
  for (const auto& [pos, peer] : peers_) sum += peer.have.count();
  return sum;
}

void SwarmScheduler::clear_flight(std::map<std::uint32_t, Flight>::iterator it) {
  if (auto p = peers_.find(it->second.peer); p != peers_.end() && p->second.window_used > 0)
    --p->second.window_used;
  inflight_.erase(it);
}

std::vector<SwarmPlan> SwarmScheduler::plan(SimTime now) {
  // Forget requests past their deadline so the chunk becomes plannable
  // against another peer.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    auto cur = it++;
    if (cur->second.deadline <= now) clear_flight(cur);
  }

  // A tree with no push feed at all is always pull-eligible. One that is
  // flowing goes by stall_timeout. One that has never delivered anything is
  // held to the longer startup grace: at depth the first stripe chunk
  // legitimately takes several pipeline hops to arrive, and pulling during
  // that ramp-up duplicates chunks the feed was about to push.
  //
  // A stalled tree whose stripe parent's own bitmap is still visibly
  // growing is in *recovering* mode, not orphaned: the parent is acquiring
  // (itself pulling around a dead ancestor) and will relay everything it
  // gets, so pulling chunks the parent already holds would only duplicate
  // its queued relays. But chunks the parent is still missing arrive last
  // of all — parent pull, then a paced relay per hop — so those the
  // descendant pulls directly from outside the subtree. The head of an
  // orphaned subtree pulls everything; descendants pull just the shrinking
  // missing-at-parent tail, which spreads the recovery burst across many
  // server uplinks instead of serializing it through the head's one.
  std::vector<std::uint8_t> mode(cfg_.trees, kFed);
  for (std::uint32_t t = 0; t < cfg_.trees; ++t) {
    if (stripe_parent_[t] == 0 || orphaned_[t] == kOrphanLocal) {
      mode[t] = kOrphan;
      continue;
    }
    const SimTime quiet = now - last_progress_[t];
    const SimTime limit = progressed_[t] ? cfg_.stall_timeout : cfg_.startup_grace;
    if (quiet > limit) {
      bool feed_active = false;
      if (auto it = peers_.find(stripe_parent_[t]); it != peers_.end()) {
        feed_active = !it->second.have.complete() &&
                      now - it->second.grew_at <= cfg_.stall_timeout;
      }
      if (!feed_active) {
        // Latch: pulled chunks land on the same progress clock as relayed
        // ones, so without the latch every pull batch "feeds" the tree for
        // another stall_timeout and the gate oscillates — pull, go quiet,
        // re-trip — leaving the downlink idle for seconds at a stretch. A
        // feed that died stays dead; keep pulling until the tree completes.
        mode[t] = kOrphan;
        orphaned_[t] = kOrphanLocal;
        continue;
      }
    }
    // Cascade-latched from the feed's recovering mask: the subtree head
    // above us is pulling around a dead ancestor. Claim only chunks the
    // feed has not obtained or claimed itself (see the candidate filter).
    if (orphaned_[t] == kOrphanCascade) mode[t] = kRecovering;
  }

  // Candidates: missing, not in flight, stripe tree stalled, held by >= 1
  // peer. Rarest-first with a seeded per-chunk tie-break.
  struct Cand {
    std::uint32_t avail;
    std::uint64_t tie;
    std::uint32_t g;
  };
  std::vector<Cand> cands;
  for (std::uint32_t g = 0; g < total_; ++g) {
    if (self_.test(g)) continue;
    const std::uint32_t t = stripe_of(g, cfg_.trees);
    if (mode[t] == kFed) continue;
    if (mode[t] == kRecovering && tree_total_[t] - tree_have_[t] > kEndgameChunks) {
      // Claim partitioning: the recovering feed pulls what it can under
      // its own request window and relays it down; we pull only chunks it
      // neither holds nor has claimed (its gossiped pending set). Pull
      // sets stay disjoint down the subtree, so no chunk is fetched twice
      // into the same downlink — the race that duplicate-storms an
      // uncoordinated everyone-pulls-everything recovery. Exception: the
      // last kEndgameChunks of a tree are pulled unconditionally —
      // deferring to the parent's claim would serialize the final chunks
      // one relay hop per level down the subtree, and by then the
      // pipeline is drained so the duplicate serves are free.
      auto it = peers_.find(stripe_parent_[t]);
      if (it != peers_.end() &&
          (it->second.have.test(g) || it->second.pending.test(g)))
        continue;
    }
    if (inflight_.contains(g)) {
      ++suppressed_;
      continue;
    }
    std::uint32_t avail = 0;
    for (const auto& [pos, peer] : peers_) avail += peer.have.test(g);
    if (avail == 0) continue;
    cands.push_back({avail, hash_combine(seed_, g), g});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.avail != b.avail) return a.avail < b.avail;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.g < b.g;
  });

  std::map<std::uint64_t, SwarmPlan> plans;
  for (const Cand& c : cands) {
    if (inflight_.size() >= cfg_.pull_window) break;
    // Least-loaded eligible peer, seeded tie-break. Load is the peer's
    // gossiped send-queue backlog plus our outstanding requests to it —
    // a request parked on a relay-saturated uplink is a reservation that
    // can sit for seconds, so spare capacity wins over rarest placement.
    // The chunk's own stripe parent is never a candidate: if it holds the
    // chunk and is alive it will push it down the tree anyway, so pulling
    // from it only ever duplicates.
    const std::uint64_t feed = stripe_parent_[stripe_of(c.g, cfg_.trees)];
    const Peer* best = nullptr;
    std::uint64_t best_pos = 0;
    std::uint64_t best_tie = 0;
    std::uint64_t best_load = 0;
    for (auto& [pos, peer] : peers_) {
      if (pos == feed) continue;
      if (!peer.have.test(c.g)) continue;
      if (peer.window_used >= cfg_.link_window) continue;
      if (plans.contains(pos) &&
          plans[pos].chunks.size() >= cfg_.request_batch)
        continue;
      const std::uint64_t load = peer.window_used + peer.backlog;
      const std::uint64_t tie = hash_combine(hash_combine(seed_, c.g), pos);
      if (best == nullptr || load < best_load ||
          (load == best_load && tie < best_tie)) {
        best = &peer;
        best_pos = pos;
        best_tie = tie;
        best_load = load;
      }
    }
    if (best == nullptr) continue;
    // Congestion deferral: a chunk whose only holders are all saturated
    // (typically the frontier, which exists solely at busy interior
    // relays) is left for a later round rather than parked in a deep
    // serve queue. Within a gossip round or two some idle-uplink station
    // acquires it and serves it immediately; an early reservation on a
    // stride-throttled server would instead sit for seconds while the
    // request window slot it burns starves chunks that could flow now.
    if (best_load >= cfg_.link_window) continue;
    auto& plan = plans[best_pos];
    plan.peer = best_pos;
    plan.chunks.push_back(c.g);
    ++peers_[best_pos].window_used;
    inflight_[c.g] = {best_pos, now + cfg_.request_timeout};
  }

  std::vector<SwarmPlan> out;
  out.reserve(plans.size());
  for (auto& [pos, plan] : plans) out.push_back(std::move(plan));
  return out;
}

}  // namespace wdoc::swarm

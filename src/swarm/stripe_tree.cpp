#include "swarm/stripe_tree.hpp"

#include "dist/mtree.hpp"  // constexpr placement equations only; no wdoc_dist link

namespace wdoc::swarm {

namespace {

// Virtual slot (1..n-1) of base position k (2..n) in tree `tree`.
std::uint64_t to_virtual(std::uint64_t k, std::uint64_t rot, std::uint64_t r) {
  return ((k - 2 + rot) % r) + 1;
}

// Base position (2..n) of virtual slot v (1..n-1) in tree `tree`.
std::uint64_t to_base(std::uint64_t v, std::uint64_t rot, std::uint64_t r) {
  return ((v - 1 + r - rot % r) % r) + 2;
}

}  // namespace

std::uint64_t stripe_rotation(std::uint32_t tree, std::uint32_t trees, std::uint64_t n) {
  if (n <= 2 || trees <= 1) return 0;
  const std::uint64_t r = n - 1;
  // Spread the tree heads evenly around the ring; at least one slot so
  // trees > r still yields distinct-as-possible rotations.
  std::uint64_t offset = r / trees;
  if (offset == 0) offset = 1;
  return (tree * offset) % r;
}

std::optional<std::uint64_t> stripe_parent(std::uint64_t k, std::uint32_t tree,
                                           std::uint32_t trees, std::uint64_t m,
                                           std::uint64_t n) {
  if (k <= 1 || k > n || n < 2 || m < 1) return std::nullopt;
  const std::uint64_t r = n - 1;
  const std::uint64_t rot = stripe_rotation(tree, trees, n);
  const std::uint64_t v = to_virtual(k, rot, r);
  if (v == 1) return 1;  // tree head attaches directly under the instructor
  return to_base(dist::parent_position(v, m), rot, r);
}

std::vector<std::uint64_t> stripe_children(std::uint64_t k, std::uint32_t tree,
                                           std::uint32_t trees, std::uint64_t m,
                                           std::uint64_t n) {
  std::vector<std::uint64_t> out;
  if (k < 1 || k > n || n < 2 || m < 1) return out;
  const std::uint64_t r = n - 1;
  const std::uint64_t rot = stripe_rotation(tree, trees, n);
  if (k == 1) {
    out.push_back(to_base(1, rot, r));
    return out;
  }
  const std::uint64_t v = to_virtual(k, rot, r);
  for (std::uint64_t i = 1; i <= m; ++i) {
    const std::uint64_t c = dist::child_position(v, i, m);
    if (c <= r) out.push_back(to_base(c, rot, r));
  }
  return out;
}

}  // namespace wdoc::swarm

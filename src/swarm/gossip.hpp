// Deterministic bounded-degree gossip neighbor selection.
//
// A station's swarm neighbors are the stations it exchanges SwarmHave
// bitmaps with and may pull chunks from: its stripe-tree relations
// (parent, children, and siblings in every stripe tree — the stations
// whose possession it most directly depends on) plus `extra` seeded
// pseudo-random peers, the HCA-style shortcut links that keep the overlay
// diameter low without unbounded degree. The set is a pure function of
// (position, m, n, trees, extra, seed), so both endpoints of every link
// can derive it independently; extra links are intentionally asymmetric —
// the receiving end adopts the peer on first SwarmHave contact.
#pragma once

#include <cstdint>
#include <vector>

namespace wdoc::swarm {

// Sorted, deduplicated neighbor positions of `position` (1-based) in an
// n-station cluster; never contains `position` itself. Empty when the
// station is outside [1, n] or the cluster is trivial.
[[nodiscard]] std::vector<std::uint64_t> gossip_neighbors(std::uint64_t position,
                                                          std::uint64_t m, std::uint64_t n,
                                                          std::uint32_t trees,
                                                          std::uint32_t extra,
                                                          std::uint64_t seed);

}  // namespace wdoc::swarm

// SwarmScheduler: per-station rarest-first chunk request planning.
//
// The scheduler owns three pieces of state per active transfer: this
// station's own have-bitmap, the last-gossiped bitmap of every known
// peer, and the set of chunk requests currently in flight. Each gossip
// tick the station calls plan(), which returns per-peer request batches
// under these rules:
//
//   * stall gating — a chunk is only pulled when its stripe tree has made
//     no progress for stall_timeout (or has no live push feed at all), so
//     a cleanly-flowing pipeline generates zero duplicate traffic. Pull
//     mode LATCHES once tripped: pulled chunks land on the same progress
//     clock that feeds the gate, so an unlatched gate would close behind
//     every pulled batch and reopen a stall_timeout later. A tree whose
//     stripe parent gossips a recovering mask latches too (the orphan
//     signal cascades down exactly the dead station's subtree), but in
//     *claim partitioning* mode: the parent will relay everything it
//     gets, so the descendant pulls only chunks the parent neither has
//     nor has claimed in its pending bitmap — pull sets stay disjoint
//     down the chain, spreading the recovery tail across many server
//     uplinks instead of serializing it through the head's one. In the
//     endgame (≤ 2 chunks left in the tree) the claim filter lifts, since
//     deferring to the parent would add one relay hop per tree level to
//     the very last chunks;
//   * rarest-first — candidates are ordered by how few peers hold them,
//     ties broken by a seeded hash of the chunk index (never by arrival
//     order, which would differ across runs of different topologies);
//   * per-link windows — at most link_window outstanding requests per
//     peer (and pull_window across all peers, protecting the downlink),
//     the least-loaded eligible peer taking each chunk — never the chunk's
//     own stripe parent, which would push it anyway. Load is the peer's
//     last-gossiped send-queue backlog plus our own outstanding requests
//     to it, so requests route to uplinks with spare capacity instead of
//     piling reservations onto a relay-saturated server;
//   * duplicate suppression — an in-flight chunk is never re-requested
//     until its request_timeout deadline passes.
//
// Everything is deterministic: iteration is over ordered maps, time comes
// from the caller (the fabric clock), randomness is seeded hashing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/sim_time.hpp"
#include "swarm/bitmap.hpp"
#include "swarm/config.hpp"

namespace wdoc::swarm {

// One gossip tick's requests to a single peer (positions, not StationIds —
// the caller owns the position → station mapping).
struct SwarmPlan {
  std::uint64_t peer = 0;
  std::vector<std::uint32_t> chunks;  // global chunk indices
};

// One peer's gossip reading, as decoded off the wire. Bitmap pointers may
// be null when the message variant doesn't carry that bitmap.
struct PeerReport {
  const std::vector<std::uint64_t>* have = nullptr;
  const std::vector<std::uint64_t>* pending = nullptr;  // in-flight requests
  std::uint32_t backlog = 0;     // serve-latency estimate, chunk-times
  std::uint64_t recovering = 0;  // per-tree pull-mode mask
  SimTime now;
};

class SwarmScheduler {
 public:
  SwarmScheduler(std::uint32_t total_chunks, SwarmConfig cfg, std::uint64_t seed,
                 SimTime now);

  // Topology: which position feeds each stripe tree (0 = no feed, e.g. at
  // the root), and the gossip neighbor set.
  void set_stripe_parent(std::uint32_t tree, std::uint64_t parent_position);
  void add_peer(std::uint64_t position);
  // Every known peer in ascending position order (configured neighbors
  // plus peers adopted on first gossip contact).
  [[nodiscard]] std::vector<std::uint64_t> peer_positions() const;

  // Self state. mark_have returns true when the chunk was newly acquired;
  // it also clears any in-flight request for it and records stripe-tree
  // progress for stall detection.
  void seed_self(const Bitmap& have, SimTime now);
  bool mark_have(std::uint32_t g, SimTime now);
  [[nodiscard]] const Bitmap& self() const { return self_; }
  [[nodiscard]] bool complete() const { return self_.complete(); }

  // Peer state, fed from SwarmHave gossip (and SwarmReq piggybacks).
  // Unknown peers are adopted on first contact (asymmetric shortcut links).
  // A report from a stripe parent whose recovering mask covers one of our
  // trees latches that tree into pull mode too — the orphan signal
  // cascades down the dead node's subtree and nowhere else.
  void peer_update(std::uint64_t position, const PeerReport& report);
  // Possession-only convenience form (tests, simple callers).
  void peer_update(std::uint64_t position, const std::vector<std::uint64_t>& words,
                   std::uint32_t backlog = 0, SimTime now = SimTime::zero());
  [[nodiscard]] bool peer_has(std::uint64_t position, std::uint32_t g) const;
  // Has the chunk or reported a request for it in flight — the relay
  // suppression predicate (sending to either is a wasted send).
  [[nodiscard]] bool peer_covered(std::uint64_t position, std::uint32_t g) const;
  [[nodiscard]] bool peer_complete(std::uint64_t position) const;
  // Last time any gossip arrived from this peer (zero if never) — the
  // liveness signal behind stripe-ancestor adoption.
  [[nodiscard]] SimTime peer_heard_at(std::uint64_t position) const;
  [[nodiscard]] bool peers_complete() const;
  // Monotone progress fingerprint (self + all peer counts); two equal
  // readings mean nothing changed between gossip rounds.
  [[nodiscard]] std::uint64_t state_sum() const;

  // Plans this round's requests (see file comment for the rules) and
  // registers them as in flight. Deterministic for a given state.
  [[nodiscard]] std::vector<SwarmPlan> plan(SimTime now);

  [[nodiscard]] std::size_t in_flight() const { return inflight_.size(); }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const { return suppressed_; }

  // Gossip exports: the in-flight request set as a bitmap (same geometry
  // as the have-bitmap), and the per-tree pull-mode mask restricted to
  // trees still missing chunks.
  [[nodiscard]] std::vector<std::uint64_t> pending_words() const;
  [[nodiscard]] std::uint64_t recovering_mask() const;

 private:
  struct Peer {
    Bitmap have;
    Bitmap pending;             // last-reported in-flight requests (replaced)
    std::uint32_t window_used = 0;
    std::uint32_t backlog = 0;  // last gossiped serve-latency estimate
    SimTime grew_at;            // last time gossip showed this bitmap grow
    SimTime heard_at;           // last time any gossip arrived from it
  };
  struct Flight {
    std::uint64_t peer = 0;
    SimTime deadline;
  };

  void clear_flight(std::map<std::uint32_t, Flight>::iterator it);

  std::uint32_t total_;
  SwarmConfig cfg_;
  std::uint64_t seed_;
  Bitmap self_;
  std::map<std::uint64_t, Peer> peers_;
  std::map<std::uint32_t, Flight> inflight_;
  std::vector<std::uint64_t> stripe_parent_;  // per tree; 0 = none
  std::vector<SimTime> last_progress_;        // per tree
  std::vector<std::uint8_t> progressed_;      // per tree: any chunk ever arrived
  std::vector<std::uint8_t> orphaned_;        // per tree: pull mode, latched
  std::vector<std::uint32_t> tree_total_;     // chunks striped onto each tree
  std::vector<std::uint32_t> tree_have_;      // of those, how many we hold
  std::uint64_t suppressed_ = 0;  // candidates skipped because already in flight
};

}  // namespace wdoc::swarm

#include "swarm/gossip.hpp"

#include <algorithm>
#include <set>

#include "common/hash.hpp"
#include "swarm/stripe_tree.hpp"

namespace wdoc::swarm {

std::vector<std::uint64_t> gossip_neighbors(std::uint64_t position, std::uint64_t m,
                                            std::uint64_t n, std::uint32_t trees,
                                            std::uint32_t extra, std::uint64_t seed) {
  std::set<std::uint64_t> out;
  if (position < 1 || position > n || n < 2 || m < 1) return {};
  if (trees == 0) trees = 1;

  for (std::uint32_t t = 0; t < trees; ++t) {
    if (auto p = stripe_parent(position, t, trees, m, n)) {
      out.insert(*p);
      // Siblings: the parent's other children share our feed and finish
      // adjacent chunk ranges first — the cheapest repair sources.
      for (std::uint64_t s : stripe_children(*p, t, trees, m, n)) out.insert(s);
    }
    for (std::uint64_t c : stripe_children(position, t, trees, m, n)) out.insert(c);
  }

  // Seeded shortcut peers over the non-root ring. Bounded probing keeps
  // this deterministic and O(extra) even in tiny clusters where few
  // distinct candidates exist.
  std::uint32_t added = 0;
  for (std::uint32_t j = 0; added < extra && j < extra * 8 + 8 && n > 2; ++j) {
    const std::uint64_t h = hash_combine(hash_combine(seed, position), j);
    const std::uint64_t cand = 2 + h % (n - 1);
    if (cand == position || out.contains(cand)) continue;
    out.insert(cand);
    ++added;
  }

  out.erase(position);
  return {out.begin(), out.end()};
}

}  // namespace wdoc::swarm

// Compact chunk-possession bitmap exchanged by the swarm gossip protocol.
//
// One bit per chunk of a transfer, packed into 64-bit words so a 10 MB
// lecture at 256 KB chunks gossips as a single word. Possession is
// monotone — bits are only ever set — which is what makes a neighbor's
// last-gossiped bitmap safe to use for relay suppression: "peer has chunk
// c" can be stale only in the direction of under-reporting.
#pragma once

#include <cstdint>
#include <vector>

namespace wdoc::swarm {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint32_t bits) { resize(bits); }

  void resize(std::uint32_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
    count_ = 0;
  }

  [[nodiscard]] bool test(std::uint32_t i) const {
    if (i >= bits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  // Returns true when the bit was newly set.
  bool set(std::uint32_t i) {
    if (i >= bits_) return false;
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] std::uint32_t size() const { return bits_; }
  [[nodiscard]] bool complete() const { return count_ == bits_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

  // Adopts a wire-received word vector. Trailing garbage bits beyond
  // `bits` are masked off, and the popcount is recomputed — hostile input
  // can therefore never claim chunks past the transfer geometry.
  void assign_words(std::vector<std::uint64_t> words, std::uint32_t bits) {
    bits_ = bits;
    words_ = std::move(words);
    words_.resize((bits + 63) / 64, 0);
    if (bits & 63) words_.back() &= (std::uint64_t{1} << (bits & 63)) - 1;
    count_ = 0;
    for (std::uint64_t w : words_) {
      while (w) {
        w &= w - 1;
        ++count_;
      }
    }
  }

  // OR-merge: possession only grows.
  void merge(const Bitmap& other) {
    for (std::uint32_t i = 0; i < other.bits_ && i < bits_; ++i) {
      if (other.test(i)) set(i);
    }
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  std::uint32_t bits_ = 0;
  std::uint32_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wdoc::swarm

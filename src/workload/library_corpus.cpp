#include "workload/library_corpus.hpp"

#include "common/rng.hpp"

namespace wdoc::workload {

namespace {

// Fixed vocabulary: titles, keywords, and queries all draw from here, so a
// random query usually matches part of the catalog (Zipfian hit depth is
// then governed by the workload, not by vocabulary misses).
constexpr const char* kVocab[] = {
    "distributed", "database",   "systems",     "networks",   "algorithms",
    "compilers",   "graphics",   "operating",   "parallel",   "concurrency",
    "storage",     "indexing",   "btree",       "hashing",    "replication",
    "broadcast",   "multicast",  "caching",     "consistency", "transactions",
    "locking",     "recovery",   "queues",      "scheduling", "architecture",
    "web",         "documents",  "hypertext",   "multimedia", "retrieval",
    "search",      "ranking",    "relevance",   "clustering", "partitioning",
    "protocols",   "routing",    "latency",     "throughput", "benchmarks",
    "security",    "encryption", "verification", "testing",   "debugging",
    "languages",   "semantics",  "automata",    "complexity", "optimization",
};
constexpr std::size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

constexpr const char* kDepts[] = {"CS", "EE", "SE", "IT", "DS", "MM"};
constexpr std::size_t kDeptCount = sizeof(kDepts) / sizeof(kDepts[0]);

std::string vocab_word(Rng& rng) { return kVocab[rng.uniform(kVocabSize)]; }

}  // namespace

std::vector<library::LibraryEntry> library_corpus(const LibraryCorpusConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<library::LibraryEntry> out;
  out.reserve(cfg.courses);
  for (std::size_t i = 0; i < cfg.courses; ++i) {
    library::LibraryEntry e;
    e.course_number = std::string(kDepts[i % kDeptCount]) + std::to_string(100 + i);
    std::size_t title_words = 2 + rng.uniform(3);
    for (std::size_t w = 0; w < title_words; ++w) {
      if (w > 0) e.title += ' ';
      e.title += vocab_word(rng);
    }
    e.instructor =
        "prof" + std::to_string(rng.uniform(cfg.instructors == 0 ? 1 : cfg.instructors));
    std::size_t kw = 3 + rng.uniform(4);
    for (std::size_t w = 0; w < kw; ++w) e.keywords.push_back(vocab_word(rng));
    e.script_name = "script-" + e.course_number;
    e.starting_url = "http://mmu.edu/" + e.course_number + "/index.html";
    e.added_at = static_cast<std::int64_t>(i);
    out.push_back(std::move(e));
  }
  return out;
}

std::string course_document(const library::LibraryEntry& entry) {
  std::string body = "<html><head><title>" + entry.title + "</title></head><body>\n";
  body += "<h1>" + entry.course_number + ": " + entry.title + "</h1>\n";
  body += "<p>Instructor: " + entry.instructor + "</p>\n<ul>\n";
  for (const std::string& kw : entry.keywords) {
    body += "  <li>" + kw + "</li>\n";
  }
  body += "</ul>\n<p>Start at <a href=\"" + entry.starting_url + "\">" +
          entry.starting_url + "</a></p>\n</body></html>\n";
  return body;
}

void populate_shards(std::vector<library::VirtualLibrary>& shards,
                     const std::vector<library::LibraryEntry>& entries,
                     const LibraryCorpusConfig& cfg) {
  WDOC_CHECK(!shards.empty(), "populate_shards: no shards");
  Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::size_t home = i % shards.size();
    shards[home].add_entry(entries[i]).expect("shard add_entry");
    if (shards.size() > 1 && rng.bernoulli(cfg.replicate_fraction)) {
      std::size_t replica = (home + 1 + rng.uniform(shards.size() - 1)) % shards.size();
      shards[replica].add_entry(entries[i]).expect("replica add_entry");
    }
  }
}

std::vector<std::string> query_pool(const LibraryCorpusConfig& cfg, std::size_t n) {
  Rng rng(cfg.seed ^ 0xbf58476d1ce4e5b9ULL);
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t words = 1 + rng.uniform(3);
    std::string q;
    for (std::size_t w = 0; w < words; ++w) {
      if (w > 0) q += ' ';
      q += vocab_word(rng);
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace wdoc::workload

#include "workload/patterns.hpp"

namespace wdoc::workload {

std::vector<EditOp> editing_workload(std::size_t users, std::size_t nodes,
                                     std::size_t ops, double write_fraction,
                                     std::uint64_t seed) {
  WDOC_CHECK(users > 0 && nodes > 0, "editing_workload: empty domain");
  Rng rng(seed);
  std::vector<EditOp> out;
  out.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    EditOp op;
    op.user = UserId{rng.uniform(users) + 1};
    op.node_index = rng.uniform(nodes);
    op.write = rng.bernoulli(write_fraction);
    out.push_back(op);
  }
  return out;
}

std::vector<AccessOp> zipf_access_trace(std::size_t stations, std::size_t docs,
                                        std::size_t ops, double zipf_s,
                                        std::uint64_t seed) {
  WDOC_CHECK(stations > 0 && docs > 0, "zipf_access_trace: empty domain");
  Rng rng(seed);
  ZipfSampler zipf(docs, zipf_s);
  std::vector<AccessOp> out;
  out.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    AccessOp op;
    op.station_index = rng.uniform(stations);
    op.doc_index = zipf.sample(rng);
    out.push_back(op);
  }
  return out;
}

docmodel::TraversalLog random_traversal(const std::string& base_url, std::size_t pages,
                                        std::size_t events, std::uint64_t seed) {
  Rng rng(seed);
  docmodel::TraversalLog log;
  std::int64_t t = 0;
  std::size_t current_page = 0;
  for (std::size_t i = 0; i < events; ++i) {
    t += static_cast<std::int64_t>(500 + rng.uniform(8000));
    docmodel::TraversalEvent ev;
    ev.at_ms = t;
    double u = rng.uniform01();
    if (u < 0.35 && pages > 0) {
      ev.kind = docmodel::TraversalEventKind::navigate;
      current_page = rng.uniform(pages);
      ev.target = base_url + "/page" + std::to_string(current_page) + ".html";
    } else if (u < 0.6) {
      ev.kind = docmodel::TraversalEventKind::click;
      ev.x = static_cast<std::int32_t>(rng.uniform(1024));
      ev.y = static_cast<std::int32_t>(rng.uniform(768));
    } else if (u < 0.8) {
      ev.kind = docmodel::TraversalEventKind::scroll;
      ev.y = static_cast<std::int32_t>(rng.uniform(600)) - 300;
    } else if (u < 0.9) {
      ev.kind = docmodel::TraversalEventKind::back;
    } else {
      ev.kind = docmodel::TraversalEventKind::play_media;
      ev.target = "resource-" + std::to_string(rng.uniform(8));
    }
    log.add(std::move(ev));
  }
  docmodel::TraversalEvent close;
  close.kind = docmodel::TraversalEventKind::close;
  close.at_ms = t + 1000;
  log.add(close);
  return log;
}

docmodel::AnnotationDoc random_annotation(std::size_t ops, std::uint64_t seed) {
  Rng rng(seed);
  docmodel::AnnotationDoc doc;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    docmodel::DrawOp op;
    t += static_cast<std::int64_t>(200 + rng.uniform(3000));
    op.at_ms = t;
    double u = rng.uniform01();
    op.a = {static_cast<std::int32_t>(rng.uniform(1024)),
            static_cast<std::int32_t>(rng.uniform(768))};
    op.b = {static_cast<std::int32_t>(rng.uniform(1024)),
            static_cast<std::int32_t>(rng.uniform(768))};
    op.color = static_cast<std::uint32_t>(rng.next_u64());
    op.stroke_width = static_cast<std::uint16_t>(1 + rng.uniform(5));
    if (u < 0.4) {
      op.kind = docmodel::DrawOpKind::line;
    } else if (u < 0.6) {
      op.kind = docmodel::DrawOpKind::rect;
    } else if (u < 0.7) {
      op.kind = docmodel::DrawOpKind::ellipse;
    } else if (u < 0.9) {
      op.kind = docmodel::DrawOpKind::text;
      op.text = "note-" + std::to_string(i);
    } else {
      op.kind = docmodel::DrawOpKind::freehand;
      std::size_t n = 3 + rng.uniform(12);
      for (std::size_t j = 0; j < n; ++j) {
        op.points.push_back({static_cast<std::int32_t>(rng.uniform(1024)),
                             static_cast<std::int32_t>(rng.uniform(768))});
      }
    }
    doc.add(std::move(op));
  }
  return doc;
}

}  // namespace wdoc::workload

#include "workload/patterns.hpp"

#include <algorithm>
#include <map>

namespace wdoc::workload {

std::vector<EditOp> editing_workload(std::size_t users, std::size_t nodes,
                                     std::size_t ops, double write_fraction,
                                     std::uint64_t seed) {
  WDOC_CHECK(users > 0 && nodes > 0, "editing_workload: empty domain");
  Rng rng(seed);
  std::vector<EditOp> out;
  out.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    EditOp op;
    op.user = UserId{rng.uniform(users) + 1};
    op.node_index = rng.uniform(nodes);
    op.write = rng.bernoulli(write_fraction);
    out.push_back(op);
  }
  return out;
}

std::vector<AccessOp> zipf_access_trace(std::size_t stations, std::size_t docs,
                                        std::size_t ops, double zipf_s,
                                        std::uint64_t seed) {
  WDOC_CHECK(stations > 0 && docs > 0, "zipf_access_trace: empty domain");
  Rng rng(seed);
  ZipfSampler zipf(docs, zipf_s);
  std::vector<AccessOp> out;
  out.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    AccessOp op;
    op.station_index = rng.uniform(stations);
    op.doc_index = zipf.sample(rng);
    out.push_back(op);
  }
  return out;
}

docmodel::TraversalLog random_traversal(const std::string& base_url, std::size_t pages,
                                        std::size_t events, std::uint64_t seed) {
  Rng rng(seed);
  docmodel::TraversalLog log;
  std::int64_t t = 0;
  std::size_t current_page = 0;
  for (std::size_t i = 0; i < events; ++i) {
    t += static_cast<std::int64_t>(500 + rng.uniform(8000));
    docmodel::TraversalEvent ev;
    ev.at_ms = t;
    double u = rng.uniform01();
    if (u < 0.35 && pages > 0) {
      ev.kind = docmodel::TraversalEventKind::navigate;
      current_page = rng.uniform(pages);
      ev.target = base_url + "/page" + std::to_string(current_page) + ".html";
    } else if (u < 0.6) {
      ev.kind = docmodel::TraversalEventKind::click;
      ev.x = static_cast<std::int32_t>(rng.uniform(1024));
      ev.y = static_cast<std::int32_t>(rng.uniform(768));
    } else if (u < 0.8) {
      ev.kind = docmodel::TraversalEventKind::scroll;
      ev.y = static_cast<std::int32_t>(rng.uniform(600)) - 300;
    } else if (u < 0.9) {
      ev.kind = docmodel::TraversalEventKind::back;
    } else {
      ev.kind = docmodel::TraversalEventKind::play_media;
      ev.target = "resource-" + std::to_string(rng.uniform(8));
    }
    log.add(std::move(ev));
  }
  docmodel::TraversalEvent close;
  close.kind = docmodel::TraversalEventKind::close;
  close.at_ms = t + 1000;
  log.add(close);
  return log;
}

const char* http_op_kind_name(HttpOpKind k) {
  switch (k) {
    case HttpOpKind::search: return "search";
    case HttpOpKind::check_out: return "check-out";
    case HttpOpKind::check_in: return "check-in";
    case HttpOpKind::fetch: return "fetch";
  }
  return "?";
}

std::vector<HttpOp> open_loop_http_trace(const HttpTraceConfig& cfg) {
  WDOC_CHECK(cfg.users > 0 && cfg.courses > 0, "open_loop_http_trace: empty domain");
  WDOC_CHECK(cfg.rate_qps > 0.0, "open_loop_http_trace: rate must be positive");
  Rng rng(cfg.seed);
  ZipfSampler zipf(cfg.courses, cfg.zipf_s);
  // (user, course) pairs currently checked out, per user. Bounded: a user
  // holds at most a handful of hot courses at once.
  std::map<std::uint64_t, std::vector<std::size_t>> open_loans;

  const double mean_gap_us = 1e6 / cfg.rate_qps;
  std::vector<HttpOp> out;
  out.reserve(cfg.ops);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.ops; ++i) {
    t += rng.exponential(mean_gap_us);
    HttpOp op;
    op.at_micros = static_cast<std::int64_t>(t);
    op.user = rng.uniform(cfg.users) + 1;
    op.course_index = zipf.sample(rng);

    const double u = rng.uniform01();
    const double co_edge = cfg.search_fraction + cfg.checkout_fraction;
    const double fetch_edge = co_edge + cfg.fetch_fraction;
    if (u < cfg.search_fraction) {
      op.kind = HttpOpKind::search;
    } else if (u < co_edge) {
      op.kind = HttpOpKind::check_out;
      // Re-checking-out a held course is rejected by the library; keep the
      // trace all-success by retrying the draw, degrading to fetch.
      auto& held = open_loans[op.user];
      int attempts = 0;
      while (std::find(held.begin(), held.end(), op.course_index) != held.end() &&
             attempts++ < 4) {
        op.course_index = zipf.sample(rng);
      }
      if (std::find(held.begin(), held.end(), op.course_index) != held.end()) {
        op.kind = HttpOpKind::fetch;
      } else {
        held.push_back(op.course_index);
      }
    } else if (u < fetch_edge) {
      op.kind = HttpOpKind::fetch;
      if (rng.bernoulli(cfg.bogus_fraction)) {
        op.bogus = true;
        op.course_index = cfg.courses + rng.uniform(cfg.courses);
      }
    } else {
      // Check-in: return a random held course; users with nothing out fall
      // back to a check-out (keeps every ledger op valid by construction).
      auto it = open_loans.find(op.user);
      if (it == open_loans.end() || it->second.empty()) {
        op.kind = HttpOpKind::check_out;
        open_loans[op.user].push_back(op.course_index);
      } else {
        op.kind = HttpOpKind::check_in;
        std::size_t pick = rng.uniform(it->second.size());
        op.course_index = it->second[pick];
        it->second.erase(it->second.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    out.push_back(op);
  }
  return out;
}

docmodel::AnnotationDoc random_annotation(std::size_t ops, std::uint64_t seed) {
  Rng rng(seed);
  docmodel::AnnotationDoc doc;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    docmodel::DrawOp op;
    t += static_cast<std::int64_t>(200 + rng.uniform(3000));
    op.at_ms = t;
    double u = rng.uniform01();
    op.a = {static_cast<std::int32_t>(rng.uniform(1024)),
            static_cast<std::int32_t>(rng.uniform(768))};
    op.b = {static_cast<std::int32_t>(rng.uniform(1024)),
            static_cast<std::int32_t>(rng.uniform(768))};
    op.color = static_cast<std::uint32_t>(rng.next_u64());
    op.stroke_width = static_cast<std::uint16_t>(1 + rng.uniform(5));
    if (u < 0.4) {
      op.kind = docmodel::DrawOpKind::line;
    } else if (u < 0.6) {
      op.kind = docmodel::DrawOpKind::rect;
    } else if (u < 0.7) {
      op.kind = docmodel::DrawOpKind::ellipse;
    } else if (u < 0.9) {
      op.kind = docmodel::DrawOpKind::text;
      op.text = "note-" + std::to_string(i);
    } else {
      op.kind = docmodel::DrawOpKind::freehand;
      std::size_t n = 3 + rng.uniform(12);
      for (std::size_t j = 0; j < n; ++j) {
        op.points.push_back({static_cast<std::int32_t>(rng.uniform(1024)),
                             static_cast<std::int32_t>(rng.uniform(768))});
      }
    }
    doc.add(std::move(op));
  }
  return doc;
}

}  // namespace wdoc::workload

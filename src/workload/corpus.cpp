#include "workload/corpus.hpp"

#include <array>
#include <set>

namespace wdoc::workload {

namespace {

constexpr std::array<const char*, 12> kSubjects = {
    "computer engineering", "multimedia computing", "engineering drawing",
    "data structures",      "operating systems",    "computer networks",
    "database systems",     "software engineering", "distance learning",
    "java programming",     "web authoring",        "digital libraries"};

constexpr std::array<const char*, 8> kInstructors = {
    "shih", "ma", "huang", "chen", "lin", "wang", "lee", "chang"};

blob::MediaType pick_media(Rng& rng, const CorpusConfig& cfg) {
  double u = rng.uniform01();
  if (u < cfg.video_fraction) return blob::MediaType::video;
  if (u < cfg.video_fraction + cfg.audio_fraction) return blob::MediaType::audio;
  double rest = rng.uniform01();
  if (rest < 0.4) return blob::MediaType::image;
  if (rest < 0.7) return blob::MediaType::animation;
  return blob::MediaType::midi;
}

}  // namespace

std::vector<dist::BlobRef> resource_pool(const CorpusConfig& config) {
  Rng rng(config.seed ^ 0xb10bULL);
  std::vector<dist::BlobRef> pool;
  pool.reserve(config.unique_resources);
  for (std::size_t i = 0; i < config.unique_resources; ++i) {
    dist::BlobRef ref;
    ref.type = pick_media(rng, config);
    // Size jitter: 0.5x .. 1.5x of the typical size, scaled.
    double jitter = 0.5 + rng.uniform01();
    ref.size = static_cast<std::uint64_t>(
        static_cast<double>(blob::typical_media_bytes(ref.type)) * jitter *
        config.size_scale);
    if (ref.size == 0) ref.size = 1;
    // Deterministic digest from the pool slot.
    ref.digest = digest128("corpus-resource-" + std::to_string(config.seed) + "-" +
                           std::to_string(i));
    pool.push_back(ref);
  }
  return pool;
}

Result<Corpus> generate_corpus(docmodel::Repository& repo, const CorpusConfig& config,
                               StationId home) {
  Rng rng(config.seed);
  ZipfSampler zipf(std::max<std::size_t>(config.unique_resources, 1), config.zipf_s);
  std::vector<dist::BlobRef> pool = resource_pool(config);

  Corpus corpus;
  corpus.courses.reserve(config.courses);

  docmodel::DatabaseInfo dbinfo;
  dbinfo.name = "mmu-virtual-courses";
  dbinfo.keywords = "virtual university, distance learning";
  dbinfo.author = "mmu-consortium";
  dbinfo.version = "1.0";
  dbinfo.created_at = config.base_time;
  // The database row may already exist when generating into a shared repo.
  Status db_status = repo.create_database(dbinfo);
  if (!db_status.is_ok() && db_status.code() != Errc::already_exists) {
    return Error(db_status.error());
  }

  for (std::size_t c = 0; c < config.courses; ++c) {
    GeneratedCourse course;
    const char* subject = kSubjects[c % kSubjects.size()];
    course.script_name = "script-" + std::to_string(config.seed % 1000) + "-" +
                         std::to_string(c);
    course.course_number = "CS" + std::to_string(100 + c);
    course.instructor = kInstructors[rng.uniform(kInstructors.size())];

    docmodel::ScriptInfo script;
    script.name = course.script_name;
    script.keywords = std::string("introduction, ") + subject;
    script.author = course.instructor;
    script.version = "1.0";
    script.created_at = config.base_time + static_cast<std::int64_t>(c) * 86400000000;
    script.description = std::string("Introduction to ") + subject +
                         " as a virtual course for the MMU project.";
    script.expected_completion = script.created_at + 30ll * 86400000000;
    script.pct_complete = 100.0;
    WDOC_TRY(repo.create_script(script));
    WDOC_TRY(repo.add_script_to_database(dbinfo.name, script.name));

    for (std::size_t t = 0; t < config.impls_per_course; ++t) {
      docmodel::ImplementationInfo impl;
      impl.starting_url = "http://mmu.edu/" + course.course_number + "/try" +
                          std::to_string(t + 1) + "/index.html";
      impl.script_name = course.script_name;
      impl.author = course.instructor;
      impl.created_at = script.created_at + static_cast<std::int64_t>(t) * 3600000000;
      impl.try_number = static_cast<std::int64_t>(t + 1);
      WDOC_TRY(repo.create_implementation(impl));

      dist::DocManifest manifest;
      manifest.doc_key = impl.starting_url;
      manifest.home = home;

      for (std::size_t h = 0; h < config.html_per_impl; ++h) {
        docmodel::HtmlFileInfo file;
        file.path = impl.starting_url + "/page" + std::to_string(h) + ".html";
        file.starting_url = impl.starting_url;
        std::string body = "<html><head><title>" + std::string(subject) +
                           " page " + std::to_string(h) +
                           "</title></head><body><h1>Lecture section " +
                           std::to_string(h) + "</h1></body></html>";
        file.content.assign(body.begin(), body.end());
        manifest.structure_bytes += file.content.size();
        WDOC_TRY(repo.add_html_file(file));
      }
      for (std::size_t p = 0; p < config.programs_per_impl; ++p) {
        docmodel::ProgramFileInfo prog;
        prog.path = impl.starting_url + "/applet" + std::to_string(p) + ".class";
        prog.starting_url = impl.starting_url;
        prog.language = "java";
        std::string body(1024 + rng.uniform(4096), 'j');
        prog.content.assign(body.begin(), body.end());
        manifest.structure_bytes += prog.content.size();
        WDOC_TRY(repo.add_program_file(prog));
      }

      // Zipfian resource picks (deduped per implementation).
      std::set<std::size_t> picked;
      for (std::size_t a = 0;
           a < config.resources_per_impl && picked.size() < pool.size(); ++a) {
        std::size_t slot = zipf.sample(rng);
        if (!picked.insert(slot).second) continue;
        const dist::BlobRef& ref = pool[slot];
        std::int64_t playout_ms =
            static_cast<std::int64_t>(picked.size() - 1) * 120000;  // every 2 min
        WDOC_TRY(repo.attach_synthetic_resource("implementation", impl.starting_url,
                                                ref.digest, ref.size, ref.type,
                                                playout_ms)
                     .status());
        dist::BlobRef with_playout = ref;
        with_playout.playout_ms = playout_ms;
        manifest.blobs.push_back(with_playout);
      }
      course.implementations.push_back(std::move(manifest));
    }
    corpus.courses.push_back(std::move(course));
  }
  return corpus;
}

}  // namespace wdoc::workload

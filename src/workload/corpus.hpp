// Synthetic course-corpus generation — the stand-in for the MMU project's
// real course content (DESIGN.md §0). Produces scripts, implementations,
// HTML/program files and BLOB resources with a Zipfian reuse distribution:
// popular clips (a university logo animation, a standard intro video) appear
// in many courses, the tail is course-specific.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dist/doc_object.hpp"
#include "docmodel/repository.hpp"

namespace wdoc::workload {

struct CorpusConfig {
  std::size_t courses = 10;
  std::size_t impls_per_course = 1;
  std::size_t html_per_impl = 4;
  std::size_t programs_per_impl = 1;
  std::size_t resources_per_impl = 6;
  // Pool of distinct BLOBs the whole corpus draws from; resource picks are
  // Zipf(s) over this pool.
  std::size_t unique_resources = 40;
  double zipf_s = 1.0;
  // Media mix for resources (video-heavy lectures by default).
  double video_fraction = 0.25;
  double audio_fraction = 0.25;
  std::uint64_t seed = 1999;
  // When false, real payload bytes are generated (small sizes only!).
  bool synthetic_blobs = true;
  // Scale factor on typical media sizes (1.0 = 1999-era sizes).
  double size_scale = 1.0;
  std::int64_t base_time = 915148800000000;  // 1999-01-01 in microseconds
};

struct GeneratedCourse {
  std::string script_name;
  std::string course_number;
  std::string instructor;
  std::vector<dist::DocManifest> implementations;
};

struct Corpus {
  std::vector<GeneratedCourse> courses;

  [[nodiscard]] std::vector<dist::DocManifest> all_manifests() const {
    std::vector<dist::DocManifest> out;
    for (const GeneratedCourse& c : courses) {
      out.insert(out.end(), c.implementations.begin(), c.implementations.end());
    }
    return out;
  }
};

// Fills `repo` and returns manifests (one per implementation) ready for the
// distribution layer. `home` is stamped into every manifest.
[[nodiscard]] Result<Corpus> generate_corpus(docmodel::Repository& repo,
                                             const CorpusConfig& config,
                                             StationId home = StationId{1});

// The distinct BLOB pool of a config: digest/size/type per pool slot,
// deterministic in the seed. Exposed so experiments can reason about the
// unique-bytes lower bound.
[[nodiscard]] std::vector<dist::BlobRef> resource_pool(const CorpusConfig& config);

}  // namespace wdoc::workload

// Access-pattern generators: collaborative-editing mixes (E7), Zipfian
// remote-read traces (E5), random traversal logs and annotations for the QA
// and authoring paths.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "docmodel/annotation_ops.hpp"
#include "docmodel/traversal.hpp"

namespace wdoc::workload {

struct EditOp {
  UserId user;
  std::size_t node_index = 0;  // index into the caller's node table
  bool write = false;
};

// `ops` operations by `users` users over `nodes` lockable objects;
// `write_fraction` of operations are writes. Node choice is uniform.
[[nodiscard]] std::vector<EditOp> editing_workload(std::size_t users, std::size_t nodes,
                                                   std::size_t ops, double write_fraction,
                                                   std::uint64_t seed);

struct AccessOp {
  std::size_t station_index = 0;
  std::size_t doc_index = 0;
};

// `ops` document reads issued from random stations, with Zipf(s) document
// popularity (doc 0 hottest).
[[nodiscard]] std::vector<AccessOp> zipf_access_trace(std::size_t stations,
                                                      std::size_t docs, std::size_t ops,
                                                      double zipf_s, std::uint64_t seed);

// A plausible QA browsing session over `pages` pages of an implementation.
[[nodiscard]] docmodel::TraversalLog random_traversal(const std::string& base_url,
                                                      std::size_t pages,
                                                      std::size_t events,
                                                      std::uint64_t seed);

// Instructor scribbles: `ops` random draw operations.
[[nodiscard]] docmodel::AnnotationDoc random_annotation(std::size_t ops,
                                                        std::uint64_t seed);

}  // namespace wdoc::workload

// Access-pattern generators: collaborative-editing mixes (E7), Zipfian
// remote-read traces (E5), random traversal logs and annotations for the QA
// and authoring paths.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "docmodel/annotation_ops.hpp"
#include "docmodel/traversal.hpp"

namespace wdoc::workload {

struct EditOp {
  UserId user;
  std::size_t node_index = 0;  // index into the caller's node table
  bool write = false;
};

// `ops` operations by `users` users over `nodes` lockable objects;
// `write_fraction` of operations are writes. Node choice is uniform.
[[nodiscard]] std::vector<EditOp> editing_workload(std::size_t users, std::size_t nodes,
                                                   std::size_t ops, double write_fraction,
                                                   std::uint64_t seed);

struct AccessOp {
  std::size_t station_index = 0;
  std::size_t doc_index = 0;
};

// `ops` document reads issued from random stations, with Zipf(s) document
// popularity (doc 0 hottest).
[[nodiscard]] std::vector<AccessOp> zipf_access_trace(std::size_t stations,
                                                      std::size_t docs, std::size_t ops,
                                                      double zipf_s, std::uint64_t seed);

// A plausible QA browsing session over `pages` pages of an implementation.
[[nodiscard]] docmodel::TraversalLog random_traversal(const std::string& base_url,
                                                      std::size_t pages,
                                                      std::size_t events,
                                                      std::uint64_t seed);

// Instructor scribbles: `ops` random draw operations.
[[nodiscard]] docmodel::AnnotationDoc random_annotation(std::size_t ops,
                                                        std::uint64_t seed);

// --- open-loop HTTP gateway workload ---------------------------------------
//
// An *open-loop* arrival process: request times are drawn up front from a
// Poisson process at `rate_qps` regardless of how fast the server answers,
// so queueing delay shows up in measured latency instead of throttling the
// offered load (the honest way to claim "sustains N users"). Users are
// drawn uniformly from a large population; courses are Zipfian (hot course
// 0). The generator tracks per-user open loans so every check-in in the
// trace targets a loan an earlier check-out opened — with per-user FIFO
// ordering (route each user to one pipelined connection) all ledger ops
// succeed deterministically.

enum class HttpOpKind : std::uint8_t { search, check_out, check_in, fetch };

[[nodiscard]] const char* http_op_kind_name(HttpOpKind k);

struct HttpOp {
  std::int64_t at_micros = 0;   // scheduled send time from trace start
  HttpOpKind kind = HttpOpKind::search;
  std::uint64_t user = 0;       // 1-based simulated user id
  std::size_t course_index = 0; // Zipf rank; for search: the query seed
  bool bogus = false;           // targets a course outside the catalog (404)
};

struct HttpTraceConfig {
  std::size_t users = 100'000;   // simulated population
  std::size_t courses = 500;     // catalog size
  std::size_t ops = 40'000;      // total requests
  double rate_qps = 50'000.0;    // offered load (arrival rate)
  double zipf_s = 1.0;           // course popularity skew
  double search_fraction = 0.55;
  double checkout_fraction = 0.20;
  double fetch_fraction = 0.18;  // remainder are check-in attempts
  double bogus_fraction = 0.02;  // of fetches: unknown course, answered 404
  std::uint64_t seed = 1;
};

// Deterministic for a given config; arrival times are nondecreasing.
[[nodiscard]] std::vector<HttpOp> open_loop_http_trace(const HttpTraceConfig& cfg);

}  // namespace wdoc::workload

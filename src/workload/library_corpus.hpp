// Seeded generator of virtual-library catalogs for the HTTP gateway: course
// entries (titles/keywords drawn from a fixed CS vocabulary), per-course
// document bodies, sharding with replication across library instances, and
// a deterministic pool of multi-token search queries. Shared by
// tests/test_http.cpp, bench/bench_http.cpp, and examples/http_gateway.cpp
// so all three serve the same catalog for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "library/virtual_library.hpp"

namespace wdoc::workload {

struct LibraryCorpusConfig {
  std::size_t courses = 500;
  std::size_t instructors = 40;
  std::size_t shards = 3;          // library instances behind the gateway
  double replicate_fraction = 0.2; // courses also placed on a second shard
  std::uint64_t seed = 1;
};

// `courses` deterministic entries; course_number is "<DEPT><number>" and is
// unique across the catalog.
[[nodiscard]] std::vector<library::LibraryEntry> library_corpus(
    const LibraryCorpusConfig& cfg);

// Synthetic HTML body for a course document (what GET /doc serves).
[[nodiscard]] std::string course_document(const library::LibraryEntry& entry);

// Distributes `entries` across `cfg.shards` instances round-robin, then
// replicates `replicate_fraction` of them onto a second shard (so federated
// search must deduplicate). Deterministic.
void populate_shards(std::vector<library::VirtualLibrary>& shards,
                     const std::vector<library::LibraryEntry>& entries,
                     const LibraryCorpusConfig& cfg);

// `n` multi-token queries over the same vocabulary the titles/keywords are
// built from, so most queries hit something.
[[nodiscard]] std::vector<std::string> query_pool(const LibraryCorpusConfig& cfg,
                                                  std::size_t n);

}  // namespace wdoc::workload

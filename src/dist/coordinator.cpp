#include "dist/coordinator.hpp"

#include <algorithm>
#include <memory>

namespace wdoc::dist {

void Coordinator::register_station(StationId id) {
  if (positions_.contains(id)) return;
  stations_.push_back(id);
  positions_[id] = stations_.size();  // 1-based linear join order
}

std::optional<std::uint64_t> Coordinator::position_of(StationId id) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

void Coordinator::set_m(blob::MediaType type, std::uint64_t m) {
  WDOC_CHECK(m >= 1, "m must be >= 1");
  m_by_media_[static_cast<std::size_t>(type)] = m;
}

std::uint64_t Coordinator::m_for(blob::MediaType type) const {
  std::uint64_t m = m_by_media_[static_cast<std::size_t>(type)];
  return m == 0 ? 2 : m;  // conservative binary tree until adapted
}

void Coordinator::adapt(double uplink_bps, double latency_s) {
  const std::uint64_t n = std::max<std::uint64_t>(stations_.size(), 1);
  for (std::size_t t = 0; t < blob::kMediaTypeCount; ++t) {
    const std::uint64_t bytes =
        blob::typical_media_bytes(static_cast<blob::MediaType>(t));
    m_by_media_[t] = choose_m(n, bytes, uplink_bps, latency_s);
  }
}

void Coordinator::configure_tree(std::vector<StationNode*>& nodes,
                                 blob::MediaType dominant) const {
  const std::uint64_t m = m_for(dominant);
  // Every node aliases one copy of the vector; at N=10,000 stations the
  // alternative is N copies of an N-entry vector.
  auto shared = std::make_shared<const std::vector<StationId>>(stations_);
  for (StationNode* node : nodes) {
    node->set_tree(shared, m);
  }
}

Status Coordinator::register_course(const CourseRegistration& reg) {
  if (!positions_.contains(reg.station)) {
    return {Errc::not_found, "station not registered with the administrator"};
  }
  for (const CourseRegistration& r : registrations_) {
    if (r.course == reg.course && r.student == reg.student) {
      return {Errc::already_exists, "student already registered for " + reg.course};
    }
  }
  registrations_.push_back(reg);
  return Status::ok();
}

std::vector<CourseRegistration> Coordinator::registrations_of(
    const std::string& course) const {
  std::vector<CourseRegistration> out;
  for (const CourseRegistration& r : registrations_) {
    if (r.course == course) out.push_back(r);
  }
  return out;
}

std::vector<StationId> Coordinator::stations_of_course(const std::string& course) const {
  std::vector<StationId> out;
  for (const CourseRegistration& r : registrations_) {
    if (r.course == course &&
        std::find(out.begin(), out.end(), r.station) == out.end()) {
      out.push_back(r.station);
    }
  }
  return out;
}

}  // namespace wdoc::dist

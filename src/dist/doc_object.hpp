// Distribution-layer document objects (paper §4):
//
//   "A Web document may exist in the database at different physical
//    locations in one of the following three forms: Web Document class,
//    Web Document instance, Web Document reference to instance."
//
// A class is the reusable template and owns the BLOBs. An instance holds
// the structure (small: HTML, programs, annotations) plus pointers to the
// class's BLOBs. A reference is a mirror entry naming the home station.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "blob/media.hpp"
#include "common/hash.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::dist {

enum class ObjectForm : std::uint8_t {
  document_class = 0,
  instance = 1,
  reference = 2,
};

[[nodiscard]] const char* object_form_name(ObjectForm f);

// One BLOB the document needs: content digest plus size/type, and an
// optional playout offset for timed lecture media.
struct BlobRef {
  Digest128 digest;
  std::uint64_t size = 0;
  blob::MediaType type = blob::MediaType::other;
  std::optional<std::int64_t> playout_ms;

  friend bool operator==(const BlobRef&, const BlobRef&) = default;
};

// Wire/manifest description of a document: everything a station needs to
// decide what to fetch. structure_bytes covers the small copied objects.
struct DocManifest {
  std::string doc_key;  // e.g. the implementation's starting URL
  std::uint64_t structure_bytes = 0;
  std::vector<BlobRef> blobs;
  StationId home;  // station holding the persistent instance/class

  [[nodiscard]] std::uint64_t blob_bytes() const {
    std::uint64_t n = 0;
    for (const BlobRef& b : blobs) n += b.size;
    return n;
  }
  [[nodiscard]] std::uint64_t total_bytes() const { return structure_bytes + blob_bytes(); }

  void serialize(Writer& w) const;
  [[nodiscard]] static Result<DocManifest> deserialize(Reader& r);

  friend bool operator==(const DocManifest&, const DocManifest&) = default;
};

}  // namespace wdoc::dist

#include "dist/object_store.hpp"

namespace wdoc::dist {

Status ObjectStore::hold_blobs(const DocManifest& manifest, std::vector<BlobId>& out) {
  out.reserve(manifest.blobs.size());
  for (const BlobRef& b : manifest.blobs) {
    auto id = blobs_->put_synthetic(b.digest, b.size, b.type);
    if (!id) {
      // Roll back partial holds.
      drop_blobs(out);
      return id.status();
    }
    out.push_back(id.value());
  }
  return Status::ok();
}

void ObjectStore::drop_blobs(std::vector<BlobId>& ids) {
  for (BlobId id : ids) {
    (void)blobs_->release(id);
  }
  ids.clear();
}

Status ObjectStore::put_instance(const DocManifest& manifest, bool ephemeral) {
  if (docs_.contains(manifest.doc_key)) {
    return {Errc::already_exists, "doc exists: " + manifest.doc_key};
  }
  StoredDoc doc;
  doc.manifest = manifest;
  doc.form = ObjectForm::instance;
  doc.ephemeral = ephemeral;
  WDOC_TRY(hold_blobs(manifest, doc.blob_ids));
  structure_bytes_ += manifest.structure_bytes;
  docs_.emplace(manifest.doc_key, std::move(doc));
  return Status::ok();
}

Status ObjectStore::put_reference(const DocManifest& manifest) {
  if (docs_.contains(manifest.doc_key)) {
    return {Errc::already_exists, "doc exists: " + manifest.doc_key};
  }
  StoredDoc doc;
  doc.manifest = manifest;
  doc.form = ObjectForm::reference;
  docs_.emplace(manifest.doc_key, std::move(doc));
  return Status::ok();
}

Status ObjectStore::declare_class(const std::string& doc_key) {
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) return {Errc::not_found, "no doc: " + doc_key};
  if (it->second.form != ObjectForm::instance) {
    return {Errc::conflict, "declare_class requires an instance"};
  }
  if (classes_.contains(doc_key)) {
    return {Errc::already_exists, "class exists: " + doc_key};
  }
  StoredDoc cls;
  cls.manifest = it->second.manifest;
  cls.form = ObjectForm::document_class;
  // "The newly created class contains the structure of the document
  // instance and all multimedia data" — the class takes its own BLOB
  // references; physically the bytes are shared via content addressing.
  WDOC_TRY(hold_blobs(cls.manifest, cls.blob_ids));
  structure_bytes_ += cls.manifest.structure_bytes;
  classes_.emplace(doc_key, std::move(cls));
  return Status::ok();
}

Result<DocManifest> ObjectStore::instantiate(const std::string& class_key,
                                             const std::string& new_key) {
  auto cit = classes_.find(class_key);
  if (cit == classes_.end()) return Error{Errc::not_found, "no class: " + class_key};
  if (docs_.contains(new_key)) {
    return Error{Errc::already_exists, "doc exists: " + new_key};
  }
  // "Structure of the document class is copied to the new document instance
  // and pointers to multimedia data are created."
  StoredDoc doc;
  doc.manifest = cit->second.manifest;
  doc.manifest.doc_key = new_key;
  doc.form = ObjectForm::instance;
  WDOC_TRY(hold_blobs(doc.manifest, doc.blob_ids));
  structure_bytes_ += doc.manifest.structure_bytes;
  DocManifest out = doc.manifest;
  docs_.emplace(new_key, std::move(doc));
  return out;
}

Status ObjectStore::demote_to_reference(const std::string& doc_key) {
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) return {Errc::not_found, "no doc: " + doc_key};
  if (it->second.form == ObjectForm::reference) return Status::ok();  // idempotent
  drop_blobs(it->second.blob_ids);
  structure_bytes_ -= it->second.manifest.structure_bytes;
  it->second.form = ObjectForm::reference;
  it->second.ephemeral = false;
  return Status::ok();
}

Status ObjectStore::materialize(const std::string& doc_key, bool ephemeral) {
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) return {Errc::not_found, "no doc: " + doc_key};
  if (it->second.form != ObjectForm::reference) return Status::ok();  // already live
  WDOC_TRY(hold_blobs(it->second.manifest, it->second.blob_ids));
  structure_bytes_ += it->second.manifest.structure_bytes;
  it->second.form = ObjectForm::instance;
  it->second.ephemeral = ephemeral;
  return Status::ok();
}

Status ObjectStore::remove(const std::string& doc_key) {
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) return {Errc::not_found, "no doc: " + doc_key};
  if (it->second.form != ObjectForm::reference) {
    drop_blobs(it->second.blob_ids);
    structure_bytes_ -= it->second.manifest.structure_bytes;
  }
  docs_.erase(it);
  return Status::ok();
}

const StoredDoc* ObjectStore::doc(const std::string& doc_key) const {
  auto it = docs_.find(doc_key);
  return it == docs_.end() ? nullptr : &it->second;
}

const StoredDoc* ObjectStore::document_class(const std::string& doc_key) const {
  auto it = classes_.find(doc_key);
  return it == classes_.end() ? nullptr : &it->second;
}

bool ObjectStore::has_materialized(const std::string& doc_key) const {
  const StoredDoc* d = doc(doc_key);
  return d != nullptr && d->form == ObjectForm::instance;
}

std::vector<std::string> ObjectStore::keys() const {
  std::vector<std::string> out;
  out.reserve(docs_.size());
  for (const auto& [key, _] : docs_) out.push_back(key);
  return out;
}

std::uint64_t ObjectStore::note_remote_retrieval(const std::string& doc_key) {
  auto it = docs_.find(doc_key);
  if (it == docs_.end()) return 0;
  return ++it->second.remote_retrievals;
}

}  // namespace wdoc::dist

#include "dist/station_node.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wdoc::dist {

namespace {

// Process-wide distribution counters; every StationNode shares them.
struct DistMetrics {
  obs::Counter& pushes;
  obs::Counter& pulls;
  obs::Counter& serves;
  obs::Counter& replications;
  obs::Counter& migrations;
  obs::Counter& failed_fetches;
  obs::Counter& blob_serves;
  obs::Counter& failovers;
  obs::Counter& resurrections;
  obs::Counter& scrape_partials;

  static DistMetrics& get() {
    static DistMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new DistMetrics{
          reg.counter("dist.pushes"),         reg.counter("dist.pulls"),
          reg.counter("dist.serves"),         reg.counter("dist.replications"),
          reg.counter("dist.migrations"),     reg.counter("dist.failed_fetches"),
          reg.counter("dist.blob_serves"),    reg.counter("dist.failovers"),
          reg.counter("dist.resurrections"),  reg.counter("dist.scrape_partials"),
      };
    }();
    return *m;
  }
};

// fetch_req payload: req_id, doc_key, path of station ids walked so far
// (originator first).
struct FetchReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchReq> decode(const Bytes& b) {
    Reader r(b);
    FetchReq out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto key = r.str();
    if (!key) return key.error();
    out.doc_key = std::move(key).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

// fetch_rsp payload: req_id, manifest, remaining relay path (originator
// first; the next hop is path.back()).
struct FetchRsp {
  std::uint64_t req_id = 0;
  DocManifest manifest;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    manifest.serialize(w);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchRsp> decode(const Bytes& b) {
    Reader r(b);
    FetchRsp out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto m = DocManifest::deserialize(r);
    if (!m) return m.error();
    out.manifest = std::move(m).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

// fetch_err payload: req_id, doc_key, terminal errc from the serving side.
struct FetchErr {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Errc code = Errc::not_found;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u32(static_cast<std::uint32_t>(code));
    return w.take();
  }
  [[nodiscard]] static Result<FetchErr> decode(const Bytes& b) {
    Reader r(b);
    FetchErr out;
    auto id = r.u64();
    auto key = r.str();
    if (!id || !key) return Error{Errc::corrupt, "bad fetch err"};
    out.req_id = id.value();
    out.doc_key = std::move(key).value();
    // Older peers omit the code; default stands.
    auto code = r.u32();
    if (code) out.code = static_cast<Errc>(code.value());
    return out;
  }
};

struct BlobReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Digest128 digest;
  std::uint64_t size = 0;
  blob::MediaType type = blob::MediaType::other;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u64(digest.lo);
    w.u64(digest.hi);
    w.u64(size);
    w.u8(static_cast<std::uint8_t>(type));
    return w.take();
  }
  [[nodiscard]] static Result<BlobReq> decode(const Bytes& b) {
    Reader r(b);
    BlobReq out;
    auto id = r.u64();
    auto key = r.str();
    if (!id || !key) return Error{Errc::corrupt, "bad blob req"};
    out.req_id = id.value();
    out.doc_key = std::move(key).value();
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    if (!lo || !hi || !size) return Error{Errc::corrupt, "bad blob req"};
    out.digest = Digest128{lo.value(), hi.value()};
    out.size = size.value();
    auto type = r.u8();
    if (type) out.type = static_cast<blob::MediaType>(type.value());
    return out;
  }
};

// blob_rsp payload echoes the served ref, so the requester can register the
// payload without keeping per-request state of its own.
struct BlobRsp {
  std::uint64_t req_id = 0;
  BlobRef blob;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.u64(blob.digest.lo);
    w.u64(blob.digest.hi);
    w.u64(blob.size);
    w.u8(static_cast<std::uint8_t>(blob.type));
    return w.take();
  }
  [[nodiscard]] static Result<BlobRsp> decode(const Bytes& b) {
    Reader r(b);
    BlobRsp out;
    auto id = r.u64();
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    auto type = r.u8();
    if (!id || !lo || !hi || !size || !type) return Error{Errc::corrupt, "bad blob rsp"};
    out.req_id = id.value();
    out.blob.digest = Digest128{lo.value(), hi.value()};
    out.blob.size = size.value();
    out.blob.type = static_cast<blob::MediaType>(type.value());
    return out;
  }
};

}  // namespace

Status StationConfig::validate() const {
  if (watermark == 0) {
    return {Errc::invalid_argument,
            "watermark must be >= 1 (use a large value to disable replication)"};
  }
  WDOC_TRY(rpc.validate());
  if (failover_threshold == 0) {
    return {Errc::invalid_argument, "failover_threshold must be >= 1"};
  }
  if (min_bandwidth_bps <= 0.0) {
    return {Errc::invalid_argument, "min_bandwidth_bps must be > 0"};
  }
  return Status::ok();
}

StationNode::StationNode(net::Fabric& fabric, StationId self, ObjectStore& store,
                         StationConfig config)
    : fabric_(&fabric),
      self_(self),
      store_(&store),
      config_(config),
      rpc_(fabric, self, config.rpc_seed) {
  Status valid = config_.validate();
  WDOC_CHECK(valid.is_ok(), "StationConfig: " + valid.message());
  rpc_.set_timeout_observer([this](std::uint64_t req_id, std::uint32_t) {
    auto it = rpc_target_.find(req_id);
    if (it != rpc_target_.end()) note_attempt_timeout(it->second);
  });
}

void StationNode::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

void StationNode::set_tree(std::vector<StationId> broadcast_vector, std::uint64_t m) {
  WDOC_CHECK(m >= 1, "set_tree: m must be >= 1");
  broadcast_vector_ = std::move(broadcast_vector);
  m_ = m;
  position_ = 0;
  for (std::size_t i = 0; i < broadcast_vector_.size(); ++i) {
    if (broadcast_vector_[i] == self_) {
      position_ = i + 1;
      break;
    }
  }
}

std::optional<StationId> StationNode::parent_station() const {
  if (position_ <= 1) return std::nullopt;
  std::uint64_t p = parent_position(position_, m_);
  return broadcast_vector_[p - 1];
}

std::optional<StationId> StationNode::live_parent_station() const {
  if (position_ <= 1) return std::nullopt;
  // Walk the ancestor chain, skipping declared-dead stations: the paper's
  // parent equation applied repeatedly (grandparent_position and beyond).
  for (std::uint64_t pos : ancestry(position_, m_)) {
    if (pos == position_) continue;
    StationId s = broadcast_vector_[pos - 1];
    if (!dead_.contains(s)) return s;
  }
  return std::nullopt;
}

// --- failure detector --------------------------------------------------------

void StationNode::note_attempt_timeout(StationId target) {
  if (dead_.contains(target)) return;
  std::uint32_t n = ++suspect_[target];
  if (n >= config_.failover_threshold) declare_dead(target);
}

void StationNode::declare_dead(StationId target) {
  suspect_.erase(target);
  if (!dead_.insert(target).second) return;
  ++stats_.failovers;
  DistMetrics::get().failovers.inc();
  obs::FlightRecorder::global().record(
      obs::FlightKind::failover,
      "station " + std::to_string(target.value()) + " declared dead after " +
          std::to_string(config_.failover_threshold) + " consecutive timeouts",
      self_.value(), target.value(), fabric_->now());
  if (parent_station() == target) {
    // Orphaned: announce the reparent route that live_parent_station()
    // will now resolve to (⌊(k−i−1)/m⌋+1 applied past the dead parent).
    auto next = live_parent_station();
    obs::FlightRecorder::global().record(
        obs::FlightKind::failover,
        "position " + std::to_string(position_) + " reparented to " +
            (next ? "station " + std::to_string(next->value())
                  : std::string("nothing: ancestor chain dead")),
        self_.value(), target.value(), fabric_->now());
  }
}

void StationNode::note_alive(StationId from) {
  suspect_.erase(from);
  if (dead_.erase(from) > 0) {
    ++stats_.resurrections;
    DistMetrics::get().resurrections.inc();
    obs::FlightRecorder::global().record(
        obs::FlightKind::failover,
        "station " + std::to_string(from.value()) + " heard from again: resurrected",
        self_.value(), from.value(), fabric_->now());
  }
}

// --- push --------------------------------------------------------------------

Status StationNode::send_push(StationId to, const DocManifest& manifest,
                              std::uint64_t trace_parent) {
  Writer w;
  manifest.serialize(w);
  net::Message msg;
  msg.from = self_;
  msg.to = to;
  msg.type = kPush;
  msg.payload = w.take();
  msg.wire_size = manifest.total_bytes();
  msg.trace_parent = trace_parent;
  DistMetrics::get().pushes.inc();
  return fabric_->send(std::move(msg));
}

Status StationNode::broadcast_push(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  // Instructor's own persistent copy (idempotent).
  if (store_->doc(manifest.doc_key) == nullptr) {
    WDOC_TRY(store_->put_instance(manifest, /*ephemeral=*/false));
  }
  auto& tracer = obs::Tracer::global();
  std::uint64_t span =
      tracer.begin("dist.push " + manifest.doc_key, 0, fabric_->now(), self_.value());
  for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
    WDOC_TRY(send_push(broadcast_vector_[child - 1], manifest, span));
    ++stats_.pushes_forwarded;
  }
  tracer.end(span, fabric_->now());
  return Status::ok();
}

void StationNode::on_message(const net::Message& msg) {
  // Any traffic from a station is proof of life: clear its suspicion and
  // resurrect it if it was declared dead (crash + restart, healed link).
  note_alive(msg.from);
  if (msg.type == kPush) {
    on_push(msg);
  } else if (msg.type == kRefAnnounce) {
    on_ref_announce(msg);
  } else if (msg.type == kFetchReq) {
    on_fetch_req(msg);
  } else if (msg.type == kFetchRsp) {
    on_fetch_rsp(msg);
  } else if (msg.type == kFetchErr) {
    on_fetch_err(msg);
  } else if (msg.type == kBlobReq) {
    on_blob_req(msg);
  } else if (msg.type == kBlobRsp) {
    on_blob_rsp(msg);
  } else if (msg.type == net::kMetricsRequest) {
    on_scrape_req(msg);
  } else if (msg.type == net::kMetricsResponse) {
    on_scrape_rsp(msg);
  } else {
    WDOC_WARN("station %llu: unknown message type %s",
              static_cast<unsigned long long>(self_.value()), msg.type.c_str());
  }
}

void StationNode::on_push(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) {
    WDOC_ERROR("push decode failed: %s", manifest.message().c_str());
    return;
  }
  ++stats_.pushes_received;
  const DocManifest& m = manifest.value();
  // Child span of the sender's push span: the trace mirrors the m-ary tree.
  auto& tracer = obs::Tracer::global();
  std::uint64_t span = tracer.begin("dist.push.hop " + m.doc_key, msg.trace_parent,
                                    fabric_->now(), self_.value());
  const StoredDoc* existing = store_->doc(m.doc_key);
  if (existing == nullptr) {
    Status s = store_->put_instance(m, /*ephemeral=*/true);
    if (!s.is_ok()) {
      WDOC_WARN("station %llu: push store failed: %s",
                static_cast<unsigned long long>(self_.value()), s.message().c_str());
    }
  } else if (existing->form == ObjectForm::reference) {
    (void)store_->materialize(m.doc_key, /*ephemeral=*/true);
  }
  // Forward down the tree.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      Status s = send_push(broadcast_vector_[child - 1], m, span);
      if (s.is_ok()) ++stats_.pushes_forwarded;
    }
  }
  tracer.end(span, fabric_->now());
}

Status StationNode::announce_reference(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  Writer w;
  manifest.serialize(w);
  for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
    net::Message msg;
    msg.from = self_;
    msg.to = broadcast_vector_[child - 1];
    msg.type = kRefAnnounce;
    msg.payload = w.data();
    // Reference records are structure-free: only the manifest crosses the
    // wire (charged at payload size), not the document.
    WDOC_TRY(fabric_->send(std::move(msg)));
  }
  return Status::ok();
}

void StationNode::on_ref_announce(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) return;
  const DocManifest& m = manifest.value();
  if (store_->doc(m.doc_key) == nullptr) {
    (void)store_->put_reference(m);
  }
  // Forward down the tree.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      net::Message out;
      out.from = self_;
      out.to = broadcast_vector_[child - 1];
      out.type = kRefAnnounce;
      out.payload = msg.payload;
      (void)fabric_->send(std::move(out));
    }
  }
}

// --- pull --------------------------------------------------------------------

Status StationNode::send_fetch_req(std::uint64_t req_id, const std::string& doc_key) {
  // Route per attempt: parent chain skipping declared-dead ancestors. When
  // the whole ancestry is suspected dead, probe the direct parent anyway —
  // suspicion is not certainty, and any reply resurrects it. With no tree
  // at all, go straight to the document's home.
  std::optional<StationId> target = live_parent_station();
  if (!target) target = parent_station();
  if (!target) {
    const StoredDoc* d = store_->doc(doc_key);
    if (d != nullptr && d->manifest.home.valid() && d->manifest.home != self_) {
      target = d->manifest.home;
    } else {
      return {Errc::unavailable, "no parent and no home reference for " + doc_key};
    }
  }
  rpc_target_[req_id] = *target;
  FetchReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.path.push_back(self_);
  net::Message msg;
  msg.from = self_;
  msg.to = *target;
  msg.type = kFetchReq;
  msg.payload = req.encode();
  return fabric_->send(std::move(msg));
}

Status StationNode::fetch(const std::string& doc_key, FetchCallback cb,
                          std::optional<net::RpcOptions> options) {
  const StoredDoc* d = store_->doc(doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    ++stats_.fetches_local;
    cb(d->manifest, fabric_->now());
    return Status::ok();
  }
  ++stats_.fetches_remote;
  DistMetrics::get().pulls.inc();

  net::RpcOptions opts = options.value_or(config_.rpc);
  if (d != nullptr) {
    // A local reference knows the document's size: give each attempt room
    // for the transfer itself on the slowest link this cluster models,
    // just as fetch_blob does.
    opts.deadline += SimTime::seconds(
        static_cast<double>(d->manifest.total_bytes()) * 8.0 / config_.min_bandwidth_bps);
  }
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  std::string key = doc_key;
  rpc_.track<DocManifest>(
      req_id, opts,
      [this, req_id, cb = std::move(cb)](Result<DocManifest> r, SimTime t) {
        rpc_target_.erase(req_id);
        if (!r.is_ok()) {
          ++stats_.failed_fetches;
          DistMetrics::get().failed_fetches.inc();
        }
        cb(std::move(r), t);
      },
      [this, req_id, key](std::uint32_t) { return send_fetch_req(req_id, key); });
  Status s = send_fetch_req(req_id, doc_key);
  if (!s.is_ok()) {
    // Never left the station: unwind the tracker and report synchronously,
    // preserving the historical "no route" contract.
    rpc_.cancel(req_id);
    rpc_target_.erase(req_id);
    --stats_.fetches_remote;
    ++stats_.failed_fetches;
    DistMetrics::get().failed_fetches.inc();
    return s;
  }
  return Status::ok();
}

void StationNode::on_fetch_req(const net::Message& msg) {
  auto req = FetchReq::decode(msg.payload);
  if (!req) return;
  FetchReq& q = req.value();

  const StoredDoc* d = store_->doc(q.doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    // Serve: relay the data back down the request path, store-and-forward.
    ++stats_.serves;
    DistMetrics::get().serves.inc();
    FetchRsp rsp;
    rsp.req_id = q.req_id;
    rsp.manifest = d->manifest;
    rsp.path = q.path;
    StationId next = rsp.path.back();
    rsp.path.pop_back();
    net::Message out;
    out.from = self_;
    out.to = next;
    out.type = kFetchRsp;
    out.payload = rsp.encode();
    out.wire_size = d->manifest.total_bytes();
    (void)fabric_->send(std::move(out));
    return;
  }

  // Not here: forward up the live chain (or probe the direct parent when
  // the whole ancestry is suspected dead — only a true root gives up).
  std::optional<StationId> up = live_parent_station();
  if (!up) up = parent_station();
  if (!up) {
    // Root (or an effective root with its ancestry dead) without the
    // document: report failure back to the originator.
    FetchErr err;
    err.req_id = q.req_id;
    err.doc_key = q.doc_key;
    err.code = Errc::not_found;
    net::Message out;
    out.from = self_;
    out.to = q.path.front();
    out.type = kFetchErr;
    out.payload = err.encode();
    (void)fabric_->send(std::move(out));
    return;
  }
  ++stats_.forwards_up;
  q.path.push_back(self_);
  net::Message out;
  out.from = self_;
  out.to = *up;
  out.type = kFetchReq;
  out.payload = q.encode();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_rsp(const net::Message& msg) {
  auto rsp = FetchRsp::decode(msg.payload);
  if (!rsp) return;
  FetchRsp& r = rsp.value();

  if (r.path.empty()) {
    // Final delivery to the originator. The store bookkeeping happens
    // regardless of rpc state: a response that arrives after its request
    // already resolved (a retry raced the original answer, or the attempt
    // budget ran out while the data was in flight) still carries the
    // document — wasting it would only force another full transfer.
    const std::string& key = r.manifest.doc_key;
    const StoredDoc* d = store_->doc(key);
    if (d == nullptr) {
      (void)store_->put_reference(r.manifest);
      d = store_->doc(key);
    }
    std::uint64_t count = store_->note_remote_retrieval(key);
    if (count >= config_.watermark && d != nullptr &&
        d->form == ObjectForm::reference) {
      // Watermark hit: copy the physical multimedia data locally.
      Status s = store_->materialize(key, /*ephemeral=*/true);
      if (s.is_ok()) {
        ++stats_.replications;
        DistMetrics::get().replications.inc();
        obs::FlightRecorder::global().record(
            obs::FlightKind::replication,
            key + " retrieval " + std::to_string(count) + "/" +
                std::to_string(config_.watermark) + ": materialized locally",
            self_.value(), 0, fabric_->now());
      }
    }
    // The callback fires exactly once: a duplicate is counted and ignored.
    if (!rpc_.in_flight(r.req_id)) {
      rpc_.note_duplicate();
      return;
    }
    (void)rpc_.complete<DocManifest>(r.req_id, r.manifest);
    return;
  }

  // Intermediate hop: relay downward (store-and-forward).
  ++stats_.relays;
  if (config_.relay_cache) {
    const StoredDoc* d = store_->doc(r.manifest.doc_key);
    if (d == nullptr) {
      (void)store_->put_instance(r.manifest, /*ephemeral=*/true);
    } else if (d->form == ObjectForm::reference) {
      (void)store_->materialize(r.manifest.doc_key, /*ephemeral=*/true);
    }
  }
  StationId next = r.path.back();
  r.path.pop_back();
  net::Message out;
  out.from = self_;
  out.to = next;
  out.type = kFetchRsp;
  out.payload = r.encode();
  out.wire_size = r.manifest.total_bytes();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_err(const net::Message& msg) {
  auto err = FetchErr::decode(msg.payload);
  if (!err) return;
  rpc_.fail(err.value().req_id,
            Error{err.value().code,
                  "document not found in tree: " + err.value().doc_key});
}

// --- blobs -------------------------------------------------------------------

Status StationNode::send_blob_req(std::uint64_t req_id, StationId holder,
                                  const std::string& doc_key, const BlobRef& blob) {
  rpc_target_[req_id] = holder;
  BlobReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.digest = blob.digest;
  req.size = blob.size;
  req.type = blob.type;
  net::Message msg;
  msg.from = self_;
  msg.to = holder;
  msg.type = kBlobReq;
  msg.payload = req.encode();
  return fabric_->send(std::move(msg));
}

Status StationNode::fetch_blob_rpc(StationId holder, const std::string& doc_key,
                                   const BlobRef& blob, BlobFetchCallback cb,
                                   std::optional<net::RpcOptions> options) {
  // Already resident (e.g. a previous fetch or a pushed lecture): no wire
  // traffic needed.
  if (store_->blobs().find(blob.digest).has_value()) {
    ++stats_.fetches_local;
    cb(blob, fabric_->now());
    return Status::ok();
  }
  net::RpcOptions opts = options.value_or(config_.rpc);
  // The payload serializes on both endpoints' links; give each attempt room
  // for the transfer itself on the slowest link this cluster models.
  opts.deadline += SimTime::seconds(static_cast<double>(blob.size) * 8.0 /
                                    config_.min_bandwidth_bps);
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  std::string key = doc_key;
  BlobRef want = blob;
  rpc_.track<BlobRef>(
      req_id, opts,
      [this, req_id, cb = std::move(cb)](Result<BlobRef> r, SimTime t) {
        rpc_target_.erase(req_id);
        cb(std::move(r), t);
      },
      [this, req_id, holder, key, want](std::uint32_t) {
        return send_blob_req(req_id, holder, key, want);
      });
  Status s = send_blob_req(req_id, holder, doc_key, blob);
  if (!s.is_ok()) {
    rpc_.cancel(req_id);
    rpc_target_.erase(req_id);
    return s;
  }
  return Status::ok();
}

void StationNode::on_blob_req(const net::Message& msg) {
  auto req = BlobReq::decode(msg.payload);
  if (!req) return;
  ++stats_.blob_serves;
  DistMetrics::get().blob_serves.inc();
  BlobRsp rsp;
  rsp.req_id = req.value().req_id;
  rsp.blob.digest = req.value().digest;
  rsp.blob.size = req.value().size;
  rsp.blob.type = req.value().type;
  net::Message out;
  out.from = self_;
  out.to = msg.from;
  out.type = kBlobRsp;
  out.payload = rsp.encode();
  out.wire_size = req.value().size;  // payload bytes charged on the wire
  (void)fabric_->send(std::move(out));
}

void StationNode::on_blob_rsp(const net::Message& msg) {
  auto rsp = BlobRsp::decode(msg.payload);
  if (!rsp) return;
  const BlobRsp& r = rsp.value();
  if (!rpc_.in_flight(r.req_id)) {
    // A retried request's extra response: counted and ignored.
    rpc_.note_duplicate();
    return;
  }
  // The payload now lives locally (ephemeral buffer: zero refs, reclaimable
  // by gc until a document instance claims it).
  auto id = store_->blobs().put_synthetic(r.blob.digest, r.blob.size, r.blob.type);
  if (id) {
    (void)store_->blobs().release(id.value());
  }
  (void)rpc_.complete<BlobRef>(r.req_id, r.blob);
}

std::uint64_t StationNode::end_lecture() {
  std::uint64_t demoted = 0;
  for (const std::string& key : store_->keys()) {
    const StoredDoc* d = store_->doc(key);
    if (d != nullptr && d->form == ObjectForm::instance && d->ephemeral) {
      if (store_->demote_to_reference(key).is_ok()) {
        ++demoted;
        ++stats_.demotions;
        DistMetrics::get().migrations.inc();
      }
    }
  }
  // "Essentially, buffer spaces are used only" — reclaim them.
  std::uint64_t reclaimed = store_->blobs().gc();
  if (demoted > 0) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::migration,
        std::to_string(demoted) + " instance(s) demoted to references, " +
            std::to_string(reclaimed) + " B reclaimed",
        self_.value(), 0, fabric_->now());
  }
  return reclaimed;
}

// --- observability plane -----------------------------------------------------

obs::Snapshot StationNode::local_snapshot() const {
  obs::Labels labels{{"station", std::to_string(self_.value())}};
  obs::Snapshot snap;
  auto counter = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::counter;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  auto gauge = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::gauge;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  const net::RpcStats rpc = rpc_.stats();
  counter("station.blob_serves", stats_.blob_serves);
  counter("station.demotions", stats_.demotions);
  counter("station.failed_fetches", stats_.failed_fetches);
  counter("station.failovers", stats_.failovers);
  counter("station.fetches_local", stats_.fetches_local);
  counter("station.fetches_remote", stats_.fetches_remote);
  counter("station.forwards_up", stats_.forwards_up);
  counter("station.pushes_forwarded", stats_.pushes_forwarded);
  counter("station.pushes_received", stats_.pushes_received);
  counter("station.relays", stats_.relays);
  counter("station.replications", stats_.replications);
  counter("station.resurrections", stats_.resurrections);
  counter("station.rpc_exhausted", rpc.exhausted);
  counter("station.rpc_retries", rpc.retries);
  counter("station.rpc_timeouts", rpc.attempt_timeouts);
  counter("station.serves", stats_.serves);
  gauge("station.disk_bytes", store_->disk_bytes());
  gauge("station.docs", store_->doc_count());
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.key() < b.key();
            });
  return snap;
}

Status StationNode::scrape_tree_rpc(SnapshotCallback cb) {
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  return start_scrape(req_id, std::nullopt, std::move(cb));
}

Status StationNode::send_scrape_rsp(StationId to, std::uint64_t req_id,
                                    const obs::Snapshot& snap) {
  net::Message out;
  out.from = self_;
  out.to = to;
  out.type = net::kMetricsResponse;
  Writer w;
  w.u64(req_id);
  obs::encode_snapshot(w, snap);
  out.payload = w.take();
  return fabric_->send(std::move(out));
}

Status StationNode::start_scrape(std::uint64_t req_id,
                                 std::optional<StationId> reply_to,
                                 SnapshotCallback cb) {
  // Duplicate request for an in-flight merge — a retried scrape, or a
  // station covered twice while tree views are momentarily inconsistent.
  // Register the requester as an extra waiter: the merge in flight answers
  // everyone when it completes. Fanning out again would clobber it.
  auto in_flight = pending_scrapes_.find(req_id);
  if (in_flight != pending_scrapes_.end()) {
    if (reply_to) {
      auto& waiters = in_flight->second.reply_to;
      if (std::find(waiters.begin(), waiters.end(), *reply_to) == waiters.end()) {
        waiters.push_back(*reply_to);
      }
    }
    return Status::ok();
  }
  // A retry that crossed the completed merge's response on the wire: answer
  // from the cache instead of re-running the whole subtree fan-out.
  for (const auto& [done_id, snap] : recent_merges_) {
    if (done_id == req_id) {
      return reply_to ? send_scrape_rsp(*reply_to, req_id, snap) : Status::ok();
    }
  }

  PendingScrape pending;
  if (reply_to) pending.reply_to.push_back(*reply_to);
  pending.cb = std::move(cb);
  pending.acc = local_snapshot();

  std::vector<StationId> targets;
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      targets.push_back(broadcast_vector_[child - 1]);
    }
  }
  pending.outstanding = targets.size();
  if (!targets.empty()) {
    // A dead subtree must not hang the merge (and everything above it)
    // forever: after a deadline scaled by how deep below us the slowest
    // answer can originate, deliver what has arrived.
    std::uint64_t height =
        position_ == 0 ? 1 : subtree_height(position_, m_, broadcast_vector_.size());
    pending.timer =
        fabric_->schedule_on(self_, config_.rpc.deadline * static_cast<std::int64_t>(height + 1),
                             [this, req_id] { on_scrape_deadline(req_id); });
  }
  pending_scrapes_[req_id] = std::move(pending);

  for (StationId child : targets) {
    net::Message msg;
    msg.from = self_;
    msg.to = child;
    msg.type = net::kMetricsRequest;
    Writer w;
    w.u64(req_id);
    msg.payload = w.take();
    Status s = fabric_->send(std::move(msg));
    if (!s.is_ok()) {
      // An unreachable child still has to be accounted for, or the merge
      // would wait forever. Its subtree is simply absent from the result.
      --pending_scrapes_[req_id].outstanding;
      WDOC_WARN("station %llu: scrape fan-out to %llu failed: %s",
                static_cast<unsigned long long>(self_.value()),
                static_cast<unsigned long long>(child.value()), s.message().c_str());
    }
  }
  finish_scrape_if_done(req_id);
  return Status::ok();
}

void StationNode::on_scrape_req(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  (void)start_scrape(req_id.value(), msg.from, nullptr);
}

void StationNode::on_scrape_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto it = pending_scrapes_.find(req_id.value());
  if (it == pending_scrapes_.end()) {
    // Merge already completed (deadline fired, or a duplicate child
    // answer): counted and ignored.
    rpc_.note_duplicate();
    return;
  }
  auto child_snap = obs::decode_snapshot(r);
  if (!child_snap) {
    WDOC_WARN("station %llu: bad scrape response from %llu: %s",
              static_cast<unsigned long long>(self_.value()),
              static_cast<unsigned long long>(msg.from.value()),
              child_snap.message().c_str());
  } else {
    obs::merge_snapshot(it->second.acc, child_snap.value());
  }
  if (it->second.outstanding > 0) --it->second.outstanding;
  finish_scrape_if_done(req_id.value());
}

void StationNode::on_scrape_deadline(std::uint64_t req_id) {
  auto it = pending_scrapes_.find(req_id);
  if (it == pending_scrapes_.end()) return;
  DistMetrics::get().scrape_partials.inc();
  obs::FlightRecorder::global().record(
      obs::FlightKind::scrape,
      "scrape merge timed out with " + std::to_string(it->second.outstanding) +
          " child subtree(s) missing: delivering partial merge",
      self_.value(), req_id, fabric_->now());
  it->second.outstanding = 0;
  finish_scrape_if_done(req_id);
}

void StationNode::finish_scrape_if_done(std::uint64_t req_id) {
  auto it = pending_scrapes_.find(req_id);
  if (it == pending_scrapes_.end() || it->second.outstanding != 0) return;
  PendingScrape done = std::move(it->second);
  pending_scrapes_.erase(it);
  if (done.timer) done.timer->store(true);
  // Keep the merge around briefly for retries that crossed it on the wire.
  recent_merges_.emplace_back(req_id, done.acc);
  if (recent_merges_.size() > kRecentMerges) recent_merges_.pop_front();
  for (StationId waiter : done.reply_to) {
    (void)send_scrape_rsp(waiter, req_id, done.acc);
  }
  if (done.cb) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::scrape,
        "scrape merged " + std::to_string(done.acc.samples.size()) + " sample(s)",
        self_.value(), 0, fabric_->now());
    done.cb(std::move(done.acc), fabric_->now());
  }
}

}  // namespace wdoc::dist

#include "dist/station_node.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wdoc::dist {

namespace {

// Process-wide distribution counters; every StationNode shares them.
struct DistMetrics {
  obs::Counter& pushes;
  obs::Counter& pulls;
  obs::Counter& serves;
  obs::Counter& replications;
  obs::Counter& migrations;
  obs::Counter& failed_fetches;
  obs::Counter& blob_serves;

  static DistMetrics& get() {
    static DistMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new DistMetrics{
          reg.counter("dist.pushes"),       reg.counter("dist.pulls"),
          reg.counter("dist.serves"),       reg.counter("dist.replications"),
          reg.counter("dist.migrations"),   reg.counter("dist.failed_fetches"),
          reg.counter("dist.blob_serves"),
      };
    }();
    return *m;
  }
};

// fetch_req payload: req_id, doc_key, path of station ids walked so far
// (originator first).
struct FetchReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchReq> decode(const Bytes& b) {
    Reader r(b);
    FetchReq out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto key = r.str();
    if (!key) return key.error();
    out.doc_key = std::move(key).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

// fetch_rsp payload: req_id, manifest, remaining relay path (originator
// first; the next hop is path.back()).
struct FetchRsp {
  std::uint64_t req_id = 0;
  DocManifest manifest;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    manifest.serialize(w);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchRsp> decode(const Bytes& b) {
    Reader r(b);
    FetchRsp out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto m = DocManifest::deserialize(r);
    if (!m) return m.error();
    out.manifest = std::move(m).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

struct BlobReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Digest128 digest;
  std::uint64_t size = 0;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u64(digest.lo);
    w.u64(digest.hi);
    w.u64(size);
    return w.take();
  }
  [[nodiscard]] static Result<BlobReq> decode(const Bytes& b) {
    Reader r(b);
    BlobReq out;
    auto id = r.u64();
    auto key = r.str();
    if (!id || !key) return Error{Errc::corrupt, "bad blob req"};
    out.req_id = id.value();
    out.doc_key = std::move(key).value();
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    if (!lo || !hi || !size) return Error{Errc::corrupt, "bad blob req"};
    out.digest = Digest128{lo.value(), hi.value()};
    out.size = size.value();
    return out;
  }
};

}  // namespace

StationNode::StationNode(net::Fabric& fabric, StationId self, ObjectStore& store,
                         NodeConfig config)
    : fabric_(&fabric), self_(self), store_(&store), config_(config) {}

void StationNode::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

void StationNode::set_tree(std::vector<StationId> broadcast_vector, std::uint64_t m) {
  WDOC_CHECK(m >= 1, "set_tree: m must be >= 1");
  broadcast_vector_ = std::move(broadcast_vector);
  m_ = m;
  position_ = 0;
  for (std::size_t i = 0; i < broadcast_vector_.size(); ++i) {
    if (broadcast_vector_[i] == self_) {
      position_ = i + 1;
      break;
    }
  }
}

std::optional<StationId> StationNode::parent_station() const {
  if (position_ <= 1) return std::nullopt;
  std::uint64_t p = parent_position(position_, m_);
  return broadcast_vector_[p - 1];
}

Status StationNode::send_push(StationId to, const DocManifest& manifest,
                              std::uint64_t trace_parent) {
  Writer w;
  manifest.serialize(w);
  net::Message msg;
  msg.from = self_;
  msg.to = to;
  msg.type = kPush;
  msg.payload = w.take();
  msg.wire_size = manifest.total_bytes();
  msg.trace_parent = trace_parent;
  DistMetrics::get().pushes.inc();
  return fabric_->send(std::move(msg));
}

Status StationNode::broadcast_push(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  // Instructor's own persistent copy (idempotent).
  if (store_->doc(manifest.doc_key) == nullptr) {
    WDOC_TRY(store_->put_instance(manifest, /*ephemeral=*/false));
  }
  auto& tracer = obs::Tracer::global();
  std::uint64_t span =
      tracer.begin("dist.push " + manifest.doc_key, 0, fabric_->now(), self_.value());
  for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
    WDOC_TRY(send_push(broadcast_vector_[child - 1], manifest, span));
    ++stats_.pushes_forwarded;
  }
  tracer.end(span, fabric_->now());
  return Status::ok();
}

void StationNode::on_message(const net::Message& msg) {
  if (msg.type == kPush) {
    on_push(msg);
  } else if (msg.type == kRefAnnounce) {
    on_ref_announce(msg);
  } else if (msg.type == kFetchReq) {
    on_fetch_req(msg);
  } else if (msg.type == kFetchRsp) {
    on_fetch_rsp(msg);
  } else if (msg.type == kFetchErr) {
    on_fetch_err(msg);
  } else if (msg.type == kBlobReq) {
    on_blob_req(msg);
  } else if (msg.type == kBlobRsp) {
    on_blob_rsp(msg);
  } else if (msg.type == net::kMetricsRequest) {
    on_scrape_req(msg);
  } else if (msg.type == net::kMetricsResponse) {
    on_scrape_rsp(msg);
  } else {
    WDOC_WARN("station %llu: unknown message type %s",
              static_cast<unsigned long long>(self_.value()), msg.type.c_str());
  }
}

void StationNode::on_push(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) {
    WDOC_ERROR("push decode failed: %s", manifest.message().c_str());
    return;
  }
  ++stats_.pushes_received;
  const DocManifest& m = manifest.value();
  // Child span of the sender's push span: the trace mirrors the m-ary tree.
  auto& tracer = obs::Tracer::global();
  std::uint64_t span = tracer.begin("dist.push.hop " + m.doc_key, msg.trace_parent,
                                    fabric_->now(), self_.value());
  const StoredDoc* existing = store_->doc(m.doc_key);
  if (existing == nullptr) {
    Status s = store_->put_instance(m, /*ephemeral=*/true);
    if (!s.is_ok()) {
      WDOC_WARN("station %llu: push store failed: %s",
                static_cast<unsigned long long>(self_.value()), s.message().c_str());
    }
  } else if (existing->form == ObjectForm::reference) {
    (void)store_->materialize(m.doc_key, /*ephemeral=*/true);
  }
  // Forward down the tree.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      Status s = send_push(broadcast_vector_[child - 1], m, span);
      if (s.is_ok()) ++stats_.pushes_forwarded;
    }
  }
  tracer.end(span, fabric_->now());
}

Status StationNode::announce_reference(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  Writer w;
  manifest.serialize(w);
  for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
    net::Message msg;
    msg.from = self_;
    msg.to = broadcast_vector_[child - 1];
    msg.type = kRefAnnounce;
    msg.payload = w.data();
    // Reference records are structure-free: only the manifest crosses the
    // wire (charged at payload size), not the document.
    WDOC_TRY(fabric_->send(std::move(msg)));
  }
  return Status::ok();
}

void StationNode::on_ref_announce(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) return;
  const DocManifest& m = manifest.value();
  if (store_->doc(m.doc_key) == nullptr) {
    (void)store_->put_reference(m);
  }
  // Forward down the tree.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      net::Message out;
      out.from = self_;
      out.to = broadcast_vector_[child - 1];
      out.type = kRefAnnounce;
      out.payload = msg.payload;
      (void)fabric_->send(std::move(out));
    }
  }
}

Status StationNode::fetch(const std::string& doc_key, FetchCallback cb) {
  const StoredDoc* d = store_->doc(doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    ++stats_.fetches_local;
    cb(d->manifest, fabric_->now());
    return Status::ok();
  }
  ++stats_.fetches_remote;
  DistMetrics::get().pulls.inc();

  // Destination: parent in the tree; with no tree configured, go straight
  // to the document's home station (requires a local reference).
  std::optional<StationId> target = parent_station();
  if (!target) {
    if (d != nullptr && d->manifest.home.valid() && d->manifest.home != self_) {
      target = d->manifest.home;
    } else {
      ++stats_.failed_fetches;
      DistMetrics::get().failed_fetches.inc();
      return {Errc::unavailable, "no parent and no home reference for " + doc_key};
    }
  }

  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  pending_fetches_[req_id] = std::move(cb);

  FetchReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.path.push_back(self_);
  net::Message msg;
  msg.from = self_;
  msg.to = *target;
  msg.type = kFetchReq;
  msg.payload = req.encode();
  Status s = fabric_->send(std::move(msg));
  if (!s.is_ok()) pending_fetches_.erase(req_id);
  return s;
}

void StationNode::on_fetch_req(const net::Message& msg) {
  auto req = FetchReq::decode(msg.payload);
  if (!req) return;
  FetchReq& q = req.value();

  const StoredDoc* d = store_->doc(q.doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    // Serve: relay the data back down the request path, store-and-forward.
    ++stats_.serves;
    DistMetrics::get().serves.inc();
    FetchRsp rsp;
    rsp.req_id = q.req_id;
    rsp.manifest = d->manifest;
    rsp.path = q.path;
    StationId next = rsp.path.back();
    rsp.path.pop_back();
    net::Message out;
    out.from = self_;
    out.to = next;
    out.type = kFetchRsp;
    out.payload = rsp.encode();
    out.wire_size = d->manifest.total_bytes();
    (void)fabric_->send(std::move(out));
    return;
  }

  // Not here: forward up the chain.
  std::optional<StationId> up = parent_station();
  if (!up) {
    // Root without the document: report failure back to the originator.
    net::Message out;
    out.from = self_;
    out.to = q.path.front();
    out.type = kFetchErr;
    Writer w;
    w.u64(q.req_id);
    w.str(q.doc_key);
    out.payload = w.take();
    (void)fabric_->send(std::move(out));
    return;
  }
  ++stats_.forwards_up;
  q.path.push_back(self_);
  net::Message out;
  out.from = self_;
  out.to = *up;
  out.type = kFetchReq;
  out.payload = q.encode();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_rsp(const net::Message& msg) {
  auto rsp = FetchRsp::decode(msg.payload);
  if (!rsp) return;
  FetchRsp& r = rsp.value();

  if (r.path.empty()) {
    // Final delivery to the originator.
    const std::string& key = r.manifest.doc_key;
    const StoredDoc* d = store_->doc(key);
    if (d == nullptr) {
      (void)store_->put_reference(r.manifest);
      d = store_->doc(key);
    }
    std::uint64_t count = store_->note_remote_retrieval(key);
    if (count >= config_.watermark && d != nullptr &&
        d->form == ObjectForm::reference) {
      // Watermark hit: copy the physical multimedia data locally.
      Status s = store_->materialize(key, /*ephemeral=*/true);
      if (s.is_ok()) {
        ++stats_.replications;
        DistMetrics::get().replications.inc();
        obs::FlightRecorder::global().record(
            obs::FlightKind::replication,
            key + " retrieval " + std::to_string(count) + "/" +
                std::to_string(config_.watermark) + ": materialized locally",
            self_.value(), 0, fabric_->now());
      }
    }
    complete_fetch(r.req_id, r.manifest);
    return;
  }

  // Intermediate hop: relay downward (store-and-forward).
  ++stats_.relays;
  if (config_.relay_cache) {
    const StoredDoc* d = store_->doc(r.manifest.doc_key);
    if (d == nullptr) {
      (void)store_->put_instance(r.manifest, /*ephemeral=*/true);
    } else if (d->form == ObjectForm::reference) {
      (void)store_->materialize(r.manifest.doc_key, /*ephemeral=*/true);
    }
  }
  StationId next = r.path.back();
  r.path.pop_back();
  net::Message out;
  out.from = self_;
  out.to = next;
  out.type = kFetchRsp;
  out.payload = r.encode();
  out.wire_size = r.manifest.total_bytes();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_err(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto key = r.str();
  ++stats_.failed_fetches;
  DistMetrics::get().failed_fetches.inc();
  complete_fetch(req_id.value(),
                 Error{Errc::not_found,
                       "document not found in tree: " + (key ? key.value() : "?")});
}

void StationNode::complete_fetch(std::uint64_t req_id, Result<DocManifest> result) {
  auto it = pending_fetches_.find(req_id);
  if (it == pending_fetches_.end()) return;
  FetchCallback cb = std::move(it->second);
  pending_fetches_.erase(it);
  cb(std::move(result), fabric_->now());
}

Status StationNode::fetch_blob(StationId holder, const std::string& doc_key,
                               const BlobRef& blob, BlobCallback cb) {
  // Already resident (e.g. a previous fetch or a pushed lecture): no wire
  // traffic needed.
  if (store_->blobs().find(blob.digest).has_value()) {
    ++stats_.fetches_local;
    cb(Status::ok(), fabric_->now());
    return Status::ok();
  }
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  pending_blobs_[req_id] = PendingBlob{blob, std::move(cb)};
  BlobReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.digest = blob.digest;
  req.size = blob.size;
  net::Message msg;
  msg.from = self_;
  msg.to = holder;
  msg.type = kBlobReq;
  msg.payload = req.encode();
  Status s = fabric_->send(std::move(msg));
  if (!s.is_ok()) pending_blobs_.erase(req_id);
  return s;
}

void StationNode::on_blob_req(const net::Message& msg) {
  auto req = BlobReq::decode(msg.payload);
  if (!req) return;
  ++stats_.blob_serves;
  DistMetrics::get().blob_serves.inc();
  net::Message out;
  out.from = self_;
  out.to = msg.from;
  out.type = kBlobRsp;
  Writer w;
  w.u64(req.value().req_id);
  out.payload = w.take();
  out.wire_size = req.value().size;  // payload bytes charged on the wire
  (void)fabric_->send(std::move(out));
}

void StationNode::on_blob_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto it = pending_blobs_.find(req_id.value());
  if (it == pending_blobs_.end()) return;
  PendingBlob pending = std::move(it->second);
  pending_blobs_.erase(it);
  // The payload now lives locally (ephemeral buffer: zero refs, reclaimable
  // by gc until a document instance claims it).
  auto id = store_->blobs().put_synthetic(pending.blob.digest, pending.blob.size,
                                          pending.blob.type);
  if (id) {
    (void)store_->blobs().release(id.value());
  }
  pending.cb(Status::ok(), fabric_->now());
}

std::uint64_t StationNode::end_lecture() {
  std::uint64_t demoted = 0;
  for (const std::string& key : store_->keys()) {
    const StoredDoc* d = store_->doc(key);
    if (d != nullptr && d->form == ObjectForm::instance && d->ephemeral) {
      if (store_->demote_to_reference(key).is_ok()) {
        ++demoted;
        ++stats_.demotions;
        DistMetrics::get().migrations.inc();
      }
    }
  }
  // "Essentially, buffer spaces are used only" — reclaim them.
  std::uint64_t reclaimed = store_->blobs().gc();
  if (demoted > 0) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::migration,
        std::to_string(demoted) + " instance(s) demoted to references, " +
            std::to_string(reclaimed) + " B reclaimed",
        self_.value(), 0, fabric_->now());
  }
  return reclaimed;
}

// --- observability plane -----------------------------------------------------

obs::Snapshot StationNode::local_snapshot() const {
  obs::Labels labels{{"station", std::to_string(self_.value())}};
  obs::Snapshot snap;
  auto counter = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::counter;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  auto gauge = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::gauge;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  counter("station.blob_serves", stats_.blob_serves);
  counter("station.demotions", stats_.demotions);
  counter("station.failed_fetches", stats_.failed_fetches);
  counter("station.fetches_local", stats_.fetches_local);
  counter("station.fetches_remote", stats_.fetches_remote);
  counter("station.forwards_up", stats_.forwards_up);
  counter("station.pushes_forwarded", stats_.pushes_forwarded);
  counter("station.pushes_received", stats_.pushes_received);
  counter("station.relays", stats_.relays);
  counter("station.replications", stats_.replications);
  counter("station.serves", stats_.serves);
  gauge("station.disk_bytes", store_->disk_bytes());
  gauge("station.docs", store_->doc_count());
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.key() < b.key();
            });
  return snap;
}

Status StationNode::scrape_tree(ScrapeCallback cb) {
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  return start_scrape(req_id, std::nullopt, std::move(cb));
}

Status StationNode::start_scrape(std::uint64_t req_id,
                                 std::optional<StationId> reply_to,
                                 ScrapeCallback cb) {
  // Duplicate request for an in-flight scrape: stations can be covered
  // twice when tree views are momentarily inconsistent (a missed
  // admin.vector update). Answer with just the local snapshot — fanning
  // out again would clobber the in-flight merge and orphan its requester.
  if (pending_scrapes_.contains(req_id)) {
    if (reply_to) {
      net::Message out;
      out.from = self_;
      out.to = *reply_to;
      out.type = net::kMetricsResponse;
      Writer w;
      w.u64(req_id);
      obs::encode_snapshot(w, local_snapshot());
      out.payload = w.take();
      return fabric_->send(std::move(out));
    }
    return Status::ok();
  }
  PendingScrape pending;
  pending.reply_to = reply_to;
  pending.cb = std::move(cb);
  pending.acc = local_snapshot();

  std::vector<StationId> targets;
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, broadcast_vector_.size())) {
      targets.push_back(broadcast_vector_[child - 1]);
    }
  }
  pending.outstanding = targets.size();
  pending_scrapes_[req_id] = std::move(pending);

  for (StationId child : targets) {
    net::Message msg;
    msg.from = self_;
    msg.to = child;
    msg.type = net::kMetricsRequest;
    Writer w;
    w.u64(req_id);
    msg.payload = w.take();
    Status s = fabric_->send(std::move(msg));
    if (!s.is_ok()) {
      // An unreachable child still has to be accounted for, or the merge
      // would wait forever. Its subtree is simply absent from the result.
      --pending_scrapes_[req_id].outstanding;
      WDOC_WARN("station %llu: scrape fan-out to %llu failed: %s",
                static_cast<unsigned long long>(self_.value()),
                static_cast<unsigned long long>(child.value()), s.message().c_str());
    }
  }
  finish_scrape_if_done(req_id);
  return Status::ok();
}

void StationNode::on_scrape_req(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  (void)start_scrape(req_id.value(), msg.from, nullptr);
}

void StationNode::on_scrape_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto it = pending_scrapes_.find(req_id.value());
  if (it == pending_scrapes_.end()) return;
  auto child_snap = obs::decode_snapshot(r);
  if (!child_snap) {
    WDOC_WARN("station %llu: bad scrape response from %llu: %s",
              static_cast<unsigned long long>(self_.value()),
              static_cast<unsigned long long>(msg.from.value()),
              child_snap.message().c_str());
  } else {
    obs::merge_snapshot(it->second.acc, child_snap.value());
  }
  if (it->second.outstanding > 0) --it->second.outstanding;
  finish_scrape_if_done(req_id.value());
}

void StationNode::finish_scrape_if_done(std::uint64_t req_id) {
  auto it = pending_scrapes_.find(req_id);
  if (it == pending_scrapes_.end() || it->second.outstanding != 0) return;
  PendingScrape done = std::move(it->second);
  pending_scrapes_.erase(it);
  if (done.reply_to) {
    net::Message out;
    out.from = self_;
    out.to = *done.reply_to;
    out.type = net::kMetricsResponse;
    Writer w;
    w.u64(req_id);
    obs::encode_snapshot(w, done.acc);
    out.payload = w.take();
    (void)fabric_->send(std::move(out));
  }
  if (done.cb) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::scrape,
        "scrape merged " + std::to_string(done.acc.samples.size()) + " sample(s)",
        self_.value(), 0, fabric_->now());
    done.cb(std::move(done.acc), fabric_->now());
  }
}

}  // namespace wdoc::dist

#include "dist/station_node.hpp"

#include <algorithm>
#include <limits>

#include "blob/chunk.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "swarm/gossip.hpp"
#include "swarm/stripe_tree.hpp"

namespace wdoc::dist {

namespace {

// Process-wide distribution counters; every StationNode shares them.
struct DistMetrics {
  obs::Counter& pushes;
  obs::Counter& pulls;
  obs::Counter& serves;
  obs::Counter& replications;
  obs::Counter& migrations;
  obs::Counter& failed_fetches;
  obs::Counter& blob_serves;
  obs::Counter& failovers;
  obs::Counter& resurrections;
  obs::Counter& scrape_partials;
  obs::Counter& chunk_sent;
  obs::Counter& chunk_bytes;
  obs::Counter& chunk_duplicates;
  obs::Counter& chunk_rejects;
  obs::Counter& chunk_retransmits;
  obs::Counter& chunk_orphans;
  obs::Counter& chunk_repair_reqs;
  obs::Counter& chunk_repair_served;
  obs::Counter& chunk_duplicate_rx;
  obs::Counter& chunk_wasted_bytes;
  obs::Counter& swarm_begins;
  obs::Counter& swarm_haves;
  obs::Counter& swarm_reqs;
  obs::Counter& swarm_req_chunks;
  obs::Counter& swarm_served;
  obs::Counter& swarm_suppressed;
  obs::Counter& swarm_orphans;

  static DistMetrics& get() {
    static DistMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new DistMetrics{
          reg.counter("dist.pushes"),         reg.counter("dist.pulls"),
          reg.counter("dist.serves"),         reg.counter("dist.replications"),
          reg.counter("dist.migrations"),     reg.counter("dist.failed_fetches"),
          reg.counter("dist.blob_serves"),    reg.counter("dist.failovers"),
          reg.counter("dist.resurrections"),  reg.counter("dist.scrape_partials"),
          reg.counter("dist.chunk.sent"),     reg.counter("dist.chunk.bytes_sent"),
          reg.counter("dist.chunk.duplicates"), reg.counter("dist.chunk.rejects"),
          reg.counter("dist.chunk.retransmits"), reg.counter("dist.chunk.orphaned"),
          reg.counter("dist.chunk.repair_reqs"), reg.counter("dist.chunk.repair_served"),
          reg.counter("dist.chunk.duplicate_rx"), reg.counter("dist.chunk.wasted_bytes"),
          reg.counter("swarm.begins"),        reg.counter("swarm.haves"),
          reg.counter("swarm.reqs"),          reg.counter("swarm.req_chunks"),
          reg.counter("swarm.served"),        reg.counter("swarm.relay_suppressed"),
          reg.counter("swarm.orphans"),
      };
    }();
    return *m;
  }
};

// Packs (blob ordinal, chunk index) into the cursor queues' chunk key.
[[nodiscard]] constexpr std::uint64_t chunk_key(std::uint32_t ordinal, std::uint32_t index) {
  return (static_cast<std::uint64_t>(ordinal) << 32) | index;
}
[[nodiscard]] constexpr std::uint32_t key_ordinal(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
[[nodiscard]] constexpr std::uint32_t key_index(std::uint64_t key) {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

// fetch_req payload: req_id, doc_key, path of station ids walked so far
// (originator first).
struct FetchReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchReq> decode(std::span<const std::uint8_t> b) {
    Reader r(b);
    FetchReq out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto key = r.str();
    if (!key) return key.error();
    out.doc_key = std::move(key).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

// fetch_rsp payload: req_id, manifest, remaining relay path (originator
// first; the next hop is path.back()).
struct FetchRsp {
  std::uint64_t req_id = 0;
  DocManifest manifest;
  std::vector<StationId> path;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    manifest.serialize(w);
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (StationId s : path) w.u64(s.value());
    return w.take();
  }
  [[nodiscard]] static Result<FetchRsp> decode(std::span<const std::uint8_t> b) {
    Reader r(b);
    FetchRsp out;
    auto id = r.u64();
    if (!id) return id.error();
    out.req_id = id.value();
    auto m = DocManifest::deserialize(r);
    if (!m) return m.error();
    out.manifest = std::move(m).value();
    auto n = r.count(8);
    if (!n) return n.error();
    out.path.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto s = r.u64();
      if (!s) return s.error();
      out.path.push_back(StationId{s.value()});
    }
    return out;
  }
};

// fetch_err payload: req_id, doc_key, terminal errc from the serving side.
struct FetchErr {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Errc code = Errc::not_found;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u32(static_cast<std::uint32_t>(code));
    return w.take();
  }
  [[nodiscard]] static Result<FetchErr> decode(std::span<const std::uint8_t> b) {
    Reader r(b);
    FetchErr out;
    auto id = r.u64();
    auto key = r.str();
    if (!id || !key) return Error{Errc::corrupt, "bad fetch err"};
    out.req_id = id.value();
    out.doc_key = std::move(key).value();
    // Older peers omit the code; default stands.
    auto code = r.u32();
    if (code) out.code = static_cast<Errc>(code.value());
    return out;
  }
};

struct BlobReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Digest128 digest;
  std::uint64_t size = 0;
  blob::MediaType type = blob::MediaType::other;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.str(doc_key);
    w.u64(digest.lo);
    w.u64(digest.hi);
    w.u64(size);
    w.u8(static_cast<std::uint8_t>(type));
    return w.take();
  }
  [[nodiscard]] static Result<BlobReq> decode(std::span<const std::uint8_t> b) {
    Reader r(b);
    BlobReq out;
    auto id = r.u64();
    auto key = r.str();
    if (!id || !key) return Error{Errc::corrupt, "bad blob req"};
    out.req_id = id.value();
    out.doc_key = std::move(key).value();
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    if (!lo || !hi || !size) return Error{Errc::corrupt, "bad blob req"};
    out.digest = Digest128{lo.value(), hi.value()};
    out.size = size.value();
    auto type = r.u8();
    if (type) out.type = static_cast<blob::MediaType>(type.value());
    return out;
  }
};

// blob_rsp payload echoes the served ref, so the requester can register the
// payload without keeping per-request state of its own.
struct BlobRsp {
  std::uint64_t req_id = 0;
  BlobRef blob;

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.u64(req_id);
    w.u64(blob.digest.lo);
    w.u64(blob.digest.hi);
    w.u64(blob.size);
    w.u8(static_cast<std::uint8_t>(blob.type));
    return w.take();
  }
  [[nodiscard]] static Result<BlobRsp> decode(std::span<const std::uint8_t> b) {
    Reader r(b);
    BlobRsp out;
    auto id = r.u64();
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    auto type = r.u8();
    if (!id || !lo || !hi || !size || !type) return Error{Errc::corrupt, "bad blob rsp"};
    out.req_id = id.value();
    out.blob.digest = Digest128{lo.value(), hi.value()};
    out.blob.size = size.value();
    out.blob.type = static_cast<blob::MediaType>(type.value());
    return out;
  }
};

}  // namespace

Status ChunkConfig::validate() const {
  if (chunk_bytes == 0 || chunk_bytes > blob::kMaxChunkBytes) {
    return {Errc::invalid_argument,
            "chunk_bytes must be in [1, " + std::to_string(blob::kMaxChunkBytes) + "]"};
  }
  if (window == 0) return {Errc::invalid_argument, "chunk window must be >= 1"};
  if (repair_batch == 0) return {Errc::invalid_argument, "repair_batch must be >= 1"};
  return Status::ok();
}

Status StationConfig::validate() const {
  if (watermark == 0) {
    return {Errc::invalid_argument,
            "watermark must be >= 1 (use a large value to disable replication)"};
  }
  WDOC_TRY(rpc.validate());
  WDOC_TRY(chunk.validate());
  WDOC_TRY(swarm.validate());
  if (swarm.enabled && !chunk.enabled) {
    return {Errc::invalid_argument, "swarm mode requires chunked transfers"};
  }
  if (failover_threshold == 0) {
    return {Errc::invalid_argument, "failover_threshold must be >= 1"};
  }
  if (min_bandwidth_bps <= 0.0) {
    return {Errc::invalid_argument, "min_bandwidth_bps must be > 0"};
  }
  return Status::ok();
}

StationNode::StationNode(net::Fabric& fabric, StationId self, ObjectStore& store,
                         StationConfig config)
    : fabric_(&fabric),
      self_(self),
      store_(&store),
      config_(config),
      rpc_(fabric, self, config.rpc_seed) {
  Status valid = config_.validate();
  WDOC_CHECK(valid.is_ok(), "StationConfig: " + valid.message());
  rpc_.set_timeout_observer([this](std::uint64_t req_id, std::uint32_t) {
    auto it = rpc_target_.find(req_id);
    if (it != rpc_target_.end()) note_attempt_timeout(it->second);
  });
}

void StationNode::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

void StationNode::set_tree(std::shared_ptr<const std::vector<StationId>> broadcast_vector,
                           std::uint64_t m) {
  WDOC_CHECK(m >= 1, "set_tree: m must be >= 1");
  WDOC_CHECK(broadcast_vector != nullptr, "set_tree: null broadcast vector");
  broadcast_vector_ = std::move(broadcast_vector);
  m_ = m;
  position_ = 0;
  for (std::size_t i = 0; i < tree_order().size(); ++i) {
    if (tree_order()[i] == self_) {
      position_ = i + 1;
      break;
    }
  }
}

void StationNode::set_tree(std::vector<StationId> broadcast_vector, std::uint64_t m) {
  set_tree(std::make_shared<const std::vector<StationId>>(std::move(broadcast_vector)), m);
}

std::optional<StationId> StationNode::parent_station() const {
  if (position_ <= 1) return std::nullopt;
  std::uint64_t p = parent_position(position_, m_);
  return tree_order()[p - 1];
}

std::optional<StationId> StationNode::live_parent_station() const {
  if (position_ <= 1) return std::nullopt;
  // Walk the ancestor chain, skipping declared-dead stations: the paper's
  // parent equation applied repeatedly (grandparent_position and beyond).
  for (std::uint64_t pos : ancestry(position_, m_)) {
    if (pos == position_) continue;
    StationId s = tree_order()[pos - 1];
    if (!dead_.contains(s)) return s;
  }
  return std::nullopt;
}

// --- failure detector --------------------------------------------------------

void StationNode::note_attempt_timeout(StationId target) {
  if (dead_.contains(target)) return;
  std::uint32_t n = ++suspect_[target];
  if (n >= config_.failover_threshold) declare_dead(target);
}

void StationNode::declare_dead(StationId target) {
  suspect_.erase(target);
  if (!dead_.insert(target).second) return;
  ++stats_.failovers;
  DistMetrics::get().failovers.inc();
  obs::FlightRecorder::global().record(
      obs::FlightKind::failover,
      "station " + std::to_string(target.value()) + " declared dead after " +
          std::to_string(config_.failover_threshold) + " consecutive timeouts",
      self_.value(), target.value(), fabric_->now());
  if (parent_station() == target) {
    // Orphaned: announce the reparent route that live_parent_station()
    // will now resolve to (⌊(k−i−1)/m⌋+1 applied past the dead parent).
    auto next = live_parent_station();
    obs::FlightRecorder::global().record(
        obs::FlightKind::failover,
        "position " + std::to_string(position_) + " reparented to " +
            (next ? "station " + std::to_string(next->value())
                  : std::string("nothing: ancestor chain dead")),
        self_.value(), target.value(), fabric_->now());
  }
}

void StationNode::note_alive(StationId from) {
  suspect_.erase(from);
  if (dead_.erase(from) > 0) {
    ++stats_.resurrections;
    DistMetrics::get().resurrections.inc();
    obs::FlightRecorder::global().record(
        obs::FlightKind::failover,
        "station " + std::to_string(from.value()) + " heard from again: resurrected",
        self_.value(), from.value(), fabric_->now());
  }
}

// --- push --------------------------------------------------------------------

Status StationNode::send_push(StationId to, const DocManifest& manifest,
                              obs::TraceContext trace) {
  Writer w;
  manifest.serialize(w);
  net::Message msg;
  msg.from = self_;
  msg.to = to;
  msg.type = kPush;
  msg.payload = w.take();
  msg.wire_size = manifest.total_bytes();
  msg.trace = trace;
  DistMetrics::get().pushes.inc();
  return fabric_->send(std::move(msg));
}

Status StationNode::broadcast_push(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  // Instructor's own persistent copy (idempotent).
  if (store_->doc(manifest.doc_key) == nullptr) {
    WDOC_TRY(store_->put_instance(manifest, /*ephemeral=*/false));
  }
  if (!config_.chunk.enabled) return broadcast_push_store_forward(manifest);
  if (config_.swarm.enabled) return start_swarm_push(manifest);
  return start_chunked_push(manifest);
}

Status StationNode::broadcast_push_store_forward(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  if (store_->doc(manifest.doc_key) == nullptr) {
    WDOC_TRY(store_->put_instance(manifest, /*ephemeral=*/false));
  }
  last_delivery_ = fabric_->now();
  auto& tracer = obs::Tracer::global();
  const std::uint64_t trace_id =
      obs::derive_trace_id((self_.value() << 24) | ++next_req_);
  std::uint64_t span = tracer.begin("dist.push " + manifest.doc_key, 0,
                                    fabric_->now(), self_.value(), trace_id);
  for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
    WDOC_TRY(send_push(tree_order()[child - 1], manifest,
                       obs::TraceContext{trace_id, span, false}));
    ++stats_.pushes_forwarded;
  }
  tracer.end(span, fabric_->now());
  return Status::ok();
}

// --- chunked push ------------------------------------------------------------

Status StationNode::start_chunked_push(const DocManifest& manifest) {
  std::uint64_t transfer_id = (self_.value() << 24) | ++next_req_;
  Transfer t;
  t.manifest = manifest;
  t.chunk_bytes = config_.chunk.chunk_bytes;
  for (const BlobRef& b : manifest.blobs) {
    t.total_chunks += blob::chunk_count(b.size, t.chunk_bytes);
  }
  t.delivered = true;  // the instructor holds the persistent instance
  last_delivery_ = fabric_->now();
  t.trace_id = obs::derive_trace_id(transfer_id);
  t.span = obs::Tracer::global().begin("dist.push " + manifest.doc_key, 0,
                                       fabric_->now(), self_.value(), t.trace_id);
  auto [it, inserted] = transfers_.emplace(transfer_id, std::move(t));
  WDOC_CHECK(inserted, "duplicate transfer id");
  open_transfer_children(transfer_id, it->second);
  maybe_retire_transfer(transfer_id);
  return Status::ok();
}

void StationNode::open_transfer_children(std::uint64_t transfer_id, Transfer& t) {
  if (position_ == 0) return;
  net::ChunkBegin begin;
  begin.transfer_id = transfer_id;
  begin.chunk_bytes = t.chunk_bytes;
  Writer w;
  t.manifest.serialize(w);
  begin.manifest = w.take();
  // One refcounted buffer shared by every child's begin: m children bump a
  // refcount instead of copying the manifest m times.
  const net::Payload payload{begin.encode()};
  for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
    StationId cid = tree_order()[child - 1];
    net::Message out;
    out.from = self_;
    out.to = cid;
    out.type = kChunkBegin;
    out.payload = payload;
    // The begin carries the structure (the small copied objects) plus the
    // manifest itself; blob bytes are charged chunk by chunk.
    out.wire_size = t.manifest.structure_bytes + payload.size();
    out.trace = obs::TraceContext{t.trace_id, t.span, t.trace_sampled};
    DistMetrics::get().pushes.inc();
    Status s = fabric_->send(std::move(out));
    if (!s.is_ok()) continue;
    ++stats_.pushes_forwarded;
    ChildCursor cursor;
    cursor.child = cid;
    t.children.push_back(std::move(cursor));
    enqueue_held_chunks(t, t.children.back());
  }
  for (ChildCursor& cursor : t.children) pump_cursor(transfer_id, cursor);
}

void StationNode::enqueue_held_chunks(Transfer& t, ChildCursor& cursor) {
  auto& bs = store_->blobs();
  for (std::uint32_t ordinal = 0; ordinal < t.manifest.blobs.size(); ++ordinal) {
    const BlobRef& b = t.manifest.blobs[ordinal];
    const std::uint32_t total = blob::chunk_count(b.size, t.chunk_bytes);
    for (std::uint32_t i = 0; i < total; ++i) {
      if (t.swarm) {
        // A stripe cursor carries only its own tree's chunks, and skips
        // any the child has already reported owning.
        const std::uint32_t g = t.chunk_prefix[ordinal] + i;
        if (swarm::stripe_of(g, t.stripe_trees) != cursor.tree) continue;
        if (t.sched && cursor.child_pos != 0 && t.sched->peer_has(cursor.child_pos, g)) {
          ++stats_.swarm_relay_suppressed;
          DistMetrics::get().swarm_suppressed.inc();
          continue;
        }
      }
      if (bs.has_chunk(b.digest, i, t.chunk_bytes)) {
        cursor.pending.push_back(chunk_key(ordinal, i));
      }
    }
  }
}

void StationNode::pump_cursor(std::uint64_t transfer_id, ChildCursor& cursor) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (dead_.contains(cursor.child)) {
    // Stop feeding a declared-dead child; its reparented subtree recovers
    // the tail through chunk-level repair instead.
    cursor.pending.clear();
    return;
  }
  while (!cursor.pending.empty() && cursor.in_flight.size() < config_.chunk.window) {
    const std::uint64_t key = cursor.pending.front();
    cursor.pending.pop_front();
    const std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
    const StationId child = cursor.child;
    rpc_target_[req_id] = child;
    net::RpcOptions opts = config_.rpc;
    // A chunk may legitimately wait behind every other in-flight chunk of
    // this transfer on the shared uplink before its ack can even start back
    // (the windows of ALL children serialize through one link — a star
    // parent queues children × window chunks); scale the per-attempt
    // deadline by that worst-case backlog on the slowest modeled link.
    opts.deadline += SimTime::seconds(
        static_cast<double>(t.children.size()) *
        static_cast<double>(config_.chunk.window) *
        static_cast<double>(t.chunk_bytes) * 8.0 / config_.min_bandwidth_bps);
    rpc_.track<std::uint64_t>(
        req_id, opts,
        [this, transfer_id, child, key, req_id](Result<std::uint64_t>, SimTime) {
          // Acked or given up: either way the window slot frees. A lost
          // chunk is not re-pushed past its retry budget — the child's
          // chunk-level repair re-pulls exactly the missing indices.
          rpc_target_.erase(req_id);
          auto ti = transfers_.find(transfer_id);
          if (ti == transfers_.end()) return;
          for (ChildCursor& c : ti->second.children) {
            if (c.child != child) continue;
            c.in_flight.erase(key);
            pump_cursor(transfer_id, c);
            break;
          }
          maybe_retire_transfer(transfer_id);
        },
        [this, transfer_id, child, key, req_id](std::uint32_t) {
          if (dead_.contains(child)) {
            return Status{Errc::unreachable, "child declared dead"};
          }
          auto ti = transfers_.find(transfer_id);
          if (ti == transfers_.end()) {
            return Status{Errc::unavailable, "transfer retired"};
          }
          return send_chunk(transfer_id, ti->second, child, key, req_id,
                            /*retransmit=*/true);
        });
    Status s = send_chunk(transfer_id, t, child, key, req_id, /*retransmit=*/false);
    if (!s.is_ok()) {
      rpc_.cancel(req_id);
      rpc_target_.erase(req_id);
      continue;
    }
    cursor.in_flight.emplace(key, req_id);
  }
}

Status StationNode::send_chunk(std::uint64_t transfer_id, const Transfer& t,
                               StationId child, std::uint64_t key,
                               std::uint64_t req_id, bool retransmit) {
  const std::uint32_t ordinal = key_ordinal(key);
  const std::uint32_t index = key_index(key);
  if (ordinal >= t.manifest.blobs.size()) {
    return {Errc::invalid_argument, "chunk key out of range"};
  }
  const BlobRef& b = t.manifest.blobs[ordinal];
  auto payload = store_->blobs().chunk_payload(b.digest, index, t.chunk_bytes);
  if (!payload) return payload.status();
  net::ChunkData d;
  d.req_id = req_id;
  d.transfer_id = transfer_id;
  d.digest = b.digest;
  d.index = index;
  d.chunk_len = blob::chunk_size_at(b.size, index, t.chunk_bytes);
  d.has_payload = !payload.value().empty();
  d.chunk_digest = d.has_payload
                       ? blob::real_chunk_digest(payload.value())
                       : blob::synthetic_chunk_digest(b.digest, index);
  if (d.has_payload) d.payload = std::move(payload).value();
  net::Message out;
  out.from = self_;
  out.to = child;
  out.type = kChunkData;
  out.payload = d.encode();  // the small per-hop header
  // The chunk bytes ride out-of-band: the slice from the blob store is
  // forwarded untouched (a refcount bump, not a copy).
  out.body = d.payload;
  if (!d.has_payload) out.wire_size = d.chunk_len + net::kWireHeaderBytes;
  out.trace = obs::TraceContext{t.trace_id, t.span, t.trace_sampled};
  ++stats_.chunks_sent;
  stats_.chunk_bytes_sent += d.chunk_len;
  auto& dm = DistMetrics::get();
  dm.chunk_sent.inc();
  dm.chunk_bytes.inc(d.chunk_len);
  if (retransmit) {
    ++stats_.chunk_retransmits;
    dm.chunk_retransmits.inc();
  }
  return fabric_->send(std::move(out));
}

bool StationNode::transfer_blobs_complete(const Transfer& t) const {
  const auto& bs = store_->blobs();
  for (const BlobRef& b : t.manifest.blobs) {
    if (b.size != 0 && !bs.find(b.digest).has_value()) return false;
  }
  return true;
}

void StationNode::deliver_transfer(std::uint64_t transfer_id) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end() || it->second.delivered) return;
  Transfer& t = it->second;
  t.delivered = true;
  last_delivery_ = fabric_->now();
  const std::string& key = t.manifest.doc_key;
  const StoredDoc* d = store_->doc(key);
  if (d == nullptr) {
    (void)store_->put_instance(t.manifest, /*ephemeral=*/true);
  } else if (d->form == ObjectForm::reference) {
    (void)store_->materialize(key, /*ephemeral=*/true);
  }
}

void StationNode::maybe_retire_transfer(std::uint64_t transfer_id) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  const Transfer& t = it->second;
  if (!t.delivered) return;
  // A swarm transfer stays alive while its gossip loop runs — it may still
  // be serving chunks to (or pulling them for) incomplete neighbors.
  if (t.swarm && !t.gossip_done) return;
  if (t.swarm && !(t.swarm_queue.empty() && t.swarm_serve_queue.empty())) return;
  for (const ChildCursor& c : t.children) {
    if (!c.pending.empty() || !c.in_flight.empty()) return;
  }
  if (t.gossip_timer) t.gossip_timer->store(true);
  if (t.pace_timer) t.pace_timer->store(true);
  obs::Tracer::global().end(t.span, fabric_->now());
  transfers_.erase(it);
}

void StationNode::on_chunk_begin(const net::Message& msg) {
  auto begin = net::ChunkBegin::decode(msg.payload);
  if (!begin) {
    WDOC_ERROR("chunk begin decode failed: %s", begin.message().c_str());
    return;
  }
  Reader mr(begin.value().manifest);
  auto manifest = DocManifest::deserialize(mr);
  if (!manifest) {
    WDOC_ERROR("chunk begin manifest decode failed: %s", manifest.message().c_str());
    return;
  }
  ++stats_.pushes_received;
  const std::uint64_t transfer_id = begin.value().transfer_id;
  if (transfers_.contains(transfer_id)) return;  // duplicate begin
  const DocManifest& m = manifest.value();
  Transfer t;
  t.manifest = m;
  t.chunk_bytes = begin.value().chunk_bytes;
  for (const BlobRef& b : m.blobs) {
    t.total_chunks += blob::chunk_count(b.size, t.chunk_bytes);
  }
  t.trace_id = msg.trace.trace_id;
  t.trace_sampled = msg.trace.sampled;
  t.span = obs::Tracer::global().begin("dist.push.hop " + m.doc_key, msg.trace.span_id,
                                       fabric_->now(), self_.value(), t.trace_id);
  // Mirror entry first, so even a transfer that loses its tail leaves the
  // routing information chunk-level repair needs.
  if (store_->doc(m.doc_key) == nullptr) (void)store_->put_reference(m);
  auto& bs = store_->blobs();
  for (const BlobRef& b : m.blobs) {
    if (bs.find(b.digest).has_value() || b.size == 0) continue;
    (void)bs.begin_partial(b.digest, b.size, b.type, t.chunk_bytes);
  }
  auto [it, inserted] = transfers_.emplace(transfer_id, std::move(t));
  WDOC_CHECK(inserted, "duplicate transfer id");
  open_transfer_children(transfer_id, it->second);
  if (transfer_blobs_complete(it->second)) deliver_transfer(transfer_id);
  maybe_retire_transfer(transfer_id);
}

void StationNode::on_chunk_data(const net::Message& msg) {
  auto data = net::ChunkData::decode(msg.payload, msg.body);
  if (!data) {
    ++stats_.chunk_rejects;
    DistMetrics::get().chunk_rejects.inc();
    return;
  }
  const net::ChunkData& d = data.value();
  if (d.req_id != 0) {
    // Receipt (not acceptance) frees the sender's window slot; duplicates
    // and rejects are acked too — integrity gaps are repair's job.
    net::ChunkAck ack;
    ack.req_id = d.req_id;
    ack.transfer_id = d.transfer_id;
    ack.digest = d.digest;
    ack.index = d.index;
    net::Message out;
    out.from = self_;
    out.to = msg.from;
    out.type = kChunkAck;
    out.payload = ack.encode();
    (void)fabric_->send(std::move(out));
  }
  auto add = store_->blobs().add_chunk(d.digest, d.index, d.chunk_digest,
                                       d.payload.span());
  if (!add) {
    if (add.code() == Errc::not_found) {
      // No assembly state here: the transfer's begin was lost, or this is
      // stray repair data. Dropped — repair re-pulls under a fresh partial.
      DistMetrics::get().chunk_orphans.inc();
    } else {
      ++stats_.chunk_rejects;
      DistMetrics::get().chunk_rejects.inc();
    }
    return;
  }
  const bool duplicate = add.value() == blob::BlobStore::ChunkAdd::duplicate;
  if (duplicate) {
    // The wire bytes were spent either way — account the waste (swarm mode
    // is where overlapping sources make this reachable at scale).
    ++stats_.chunk_duplicates;
    ++stats_.chunk_duplicate_rx;
    stats_.chunk_wasted_bytes += d.chunk_len;
    auto& dm = DistMetrics::get();
    dm.chunk_duplicates.inc();
    dm.chunk_duplicate_rx.inc();
    dm.chunk_wasted_bytes.inc(d.chunk_len);
  } else {
    ++stats_.chunks_received;
  }
  if (d.transfer_id == 0) return;  // repair/pull data: no relay, no transfer state
  auto it = transfers_.find(d.transfer_id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  std::uint32_t ordinal = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t i = 0; i < t.manifest.blobs.size(); ++i) {
    if (t.manifest.blobs[i].digest == d.digest) {
      ordinal = i;
      break;
    }
  }
  if (ordinal == std::numeric_limits<std::uint32_t>::max()) return;
  if (t.swarm && t.sched && ordinal + 1 < t.chunk_prefix.size()) {
    // Even a duplicate settles the in-flight request for this chunk.
    t.sched->mark_have(t.chunk_prefix[ordinal] + d.index, fabric_->now());
  }
  if (duplicate) return;
  // Cut-through relay: this verified chunk forwards to every child now,
  // before the next chunk arrives. In swarm mode only the chunk's stripe
  // cursors carry it, and children already known to hold it are skipped.
  const std::uint64_t key = chunk_key(ordinal, d.index);
  if (t.swarm) {
    const std::uint32_t g = t.chunk_prefix[ordinal] + d.index;
    const std::uint32_t tree = swarm::stripe_of(g, t.stripe_trees);
    for (ChildCursor& c : t.children) {
      if (c.tree != tree) continue;
      if (t.sched && c.child_pos != 0 && t.sched->peer_covered(c.child_pos, g)) {
        ++stats_.swarm_relay_suppressed;
        DistMetrics::get().swarm_suppressed.inc();
        continue;
      }
      enqueue_swarm_send(d.transfer_id, t, {c.child, c.child_pos, key, false});
    }
  } else {
    for (ChildCursor& c : t.children) c.pending.push_back(key);
    for (ChildCursor& c : t.children) pump_cursor(d.transfer_id, c);
  }
  if (!t.delivered && transfer_blobs_complete(t)) deliver_transfer(d.transfer_id);
  maybe_retire_transfer(d.transfer_id);
}

void StationNode::on_chunk_ack(const net::Message& msg) {
  auto ack = net::ChunkAck::decode(msg.payload);
  if (!ack) return;
  if (!rpc_.in_flight(ack.value().req_id)) {
    rpc_.note_duplicate();
    return;
  }
  (void)rpc_.complete<std::uint64_t>(ack.value().req_id,
                                     std::uint64_t{ack.value().index});
}

void StationNode::on_chunk_req(const net::Message& msg) {
  auto req = net::ChunkReq::decode(msg.payload);
  if (!req) return;
  const net::ChunkReq& q = req.value();
  auto& dm = DistMetrics::get();
  std::uint32_t served = 0;
  for (std::uint32_t index : q.indices) {
    auto payload = store_->blobs().chunk_payload(q.digest, index, q.chunk_bytes);
    if (!payload) continue;  // not held here — the requester walks further up
    const std::uint32_t chunk_len =
        payload.value().empty()
            ? blob::chunk_size_at(q.size, index, q.chunk_bytes)
            : static_cast<std::uint32_t>(payload.value().size());
    if (chunk_len == 0) continue;
    net::ChunkData d;
    d.req_id = 0;       // repair data is unacked; the rsp summary closes the rpc
    d.transfer_id = 0;  // not part of a push transfer: no relay downstream
    d.digest = q.digest;
    d.index = index;
    d.chunk_len = chunk_len;
    d.has_payload = !payload.value().empty();
    d.chunk_digest = d.has_payload
                         ? blob::real_chunk_digest(payload.value())
                         : blob::synthetic_chunk_digest(q.digest, index);
    if (d.has_payload) d.payload = std::move(payload).value();
    net::Message out;
    out.from = self_;
    out.to = msg.from;
    out.type = kChunkData;
    out.payload = d.encode();
    out.body = d.payload;  // repair serves the stored slice, zero-copy
    if (!d.has_payload) out.wire_size = d.chunk_len + net::kWireHeaderBytes;
    if (!fabric_->send(std::move(out)).is_ok()) continue;
    ++served;
    ++stats_.chunks_sent;
    ++stats_.chunk_repair_served;
    stats_.chunk_bytes_sent += chunk_len;
    dm.chunk_sent.inc();
    dm.chunk_bytes.inc(chunk_len);
  }
  dm.chunk_repair_served.inc(served);
  // FIFO links guarantee the data above lands before this summary.
  net::ChunkRsp rsp;
  rsp.req_id = q.req_id;
  rsp.served = served;
  rsp.requested = static_cast<std::uint32_t>(q.indices.size());
  net::Message out;
  out.from = self_;
  out.to = msg.from;
  out.type = kChunkRsp;
  out.payload = rsp.encode();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_chunk_rsp(const net::Message& msg) {
  auto rsp = net::ChunkRsp::decode(msg.payload);
  if (!rsp) return;
  if (!rpc_.in_flight(rsp.value().req_id)) {
    rpc_.note_duplicate();
    return;
  }
  (void)rpc_.complete<std::uint32_t>(rsp.value().req_id, rsp.value().served);
}

// --- swarm mode (multi-source distribution, DESIGN.md §4f) -------------------

Status StationNode::start_swarm_push(const DocManifest& manifest) {
  std::uint64_t transfer_id = (self_.value() << 24) | ++next_req_;
  Transfer t;
  t.manifest = manifest;
  t.chunk_bytes = config_.chunk.chunk_bytes;
  for (const BlobRef& b : manifest.blobs) {
    t.total_chunks += blob::chunk_count(b.size, t.chunk_bytes);
  }
  if (t.total_chunks > net::kMaxWireChunks) {
    return {Errc::invalid_argument, "transfer too large for swarm mode"};
  }
  t.delivered = true;  // the instructor holds the persistent instance
  last_delivery_ = fabric_->now();
  t.trace_id = obs::derive_trace_id(transfer_id);
  t.span = obs::Tracer::global().begin("swarm.push " + manifest.doc_key, 0,
                                       fabric_->now(), self_.value(), t.trace_id);
  auto [it, inserted] = transfers_.emplace(transfer_id, std::move(t));
  WDOC_CHECK(inserted, "duplicate transfer id");
  init_swarm(transfer_id, it->second, config_.swarm.trees);
  open_swarm_children(transfer_id, it->second);
  maybe_retire_transfer(transfer_id);
  return Status::ok();
}

void StationNode::init_swarm(std::uint64_t transfer_id, Transfer& t, std::uint32_t trees) {
  t.swarm = true;
  swarm::SwarmConfig cfg = config_.swarm;
  cfg.trees = std::clamp<std::uint32_t>(trees, 1, net::kMaxWireTrees);
  t.stripe_trees = cfg.trees;
  t.chunk_prefix.assign(1, 0);
  for (const BlobRef& b : t.manifest.blobs) {
    t.chunk_prefix.push_back(t.chunk_prefix.back() +
                             blob::chunk_count(b.size, t.chunk_bytes));
  }
  const std::uint64_t n = tree_order().size();
  const std::uint32_t total = static_cast<std::uint32_t>(t.total_chunks);
  // The tie-break seed is per-station (different stations spread their
  // pulls differently); the neighbor seed is the transfer id, which every
  // station knows, so both ends of a tree link derive the same sets.
  t.sched = std::make_unique<swarm::SwarmScheduler>(
      total, cfg, hash_combine(self_.value(), transfer_id), fabric_->now());
  t.acting_parent.assign(t.stripe_trees, 0);
  t.acting_since.assign(t.stripe_trees, fabric_->now());
  for (std::uint32_t tree = 0; tree < t.stripe_trees; ++tree) {
    auto p = swarm::stripe_parent(position_, tree, t.stripe_trees, m_, n);
    t.sched->set_stripe_parent(tree, p.value_or(0));
    t.acting_parent[tree] = p.value_or(0);
  }
  for (std::uint64_t nb : swarm::gossip_neighbors(position_, m_, n, t.stripe_trees,
                                                  config_.swarm.extra_peers, transfer_id)) {
    t.sched->add_peer(nb);
  }
  // Seed our own bitmap from whatever the blob store already holds
  // (everything at the instructor; possibly shared blobs elsewhere).
  std::vector<std::uint64_t> words((total + 63) / 64, 0);
  const auto& bs = store_->blobs();
  for (std::uint32_t ordinal = 0; ordinal < t.manifest.blobs.size(); ++ordinal) {
    const BlobRef& b = t.manifest.blobs[ordinal];
    bs.chunk_bits(b.digest, b.size, t.chunk_bytes, t.chunk_prefix[ordinal], words);
  }
  swarm::Bitmap have;
  have.assign_words(std::move(words), total);
  t.sched->seed_self(have, fabric_->now());
  schedule_swarm_tick(transfer_id);
}

void StationNode::open_swarm_children(std::uint64_t transfer_id, Transfer& t) {
  if (position_ == 0) return;
  const std::uint64_t n = tree_order().size();
  net::SwarmBegin begin;
  begin.transfer_id = transfer_id;
  begin.chunk_bytes = t.chunk_bytes;
  begin.trees = t.stripe_trees;
  Writer w;
  t.manifest.serialize(w);
  begin.manifest = w.take();
  // One refcounted begin shared by every stripe child; a station that is
  // our child in several trees gets one begin but one cursor per tree.
  const net::Payload payload{begin.encode()};
  std::set<std::uint64_t> announced;
  for (std::uint32_t tree = 0; tree < t.stripe_trees; ++tree) {
    for (std::uint64_t child_pos :
         swarm::stripe_children(position_, tree, t.stripe_trees, m_, n)) {
      if (child_pos < 1 || child_pos > n || child_pos == position_) continue;
      StationId cid = tree_order()[child_pos - 1];
      if (announced.insert(child_pos).second) {
        net::Message out;
        out.from = self_;
        out.to = cid;
        out.type = kSwarmBegin;
        out.payload = payload;
        out.wire_size = t.manifest.structure_bytes + payload.size();
        out.trace = obs::TraceContext{t.trace_id, t.span, t.trace_sampled};
        DistMetrics::get().swarm_begins.inc();
        (void)fabric_->send(std::move(out));
        ++stats_.pushes_forwarded;
      }
      ChildCursor cursor;
      cursor.child = cid;
      cursor.tree = tree;
      cursor.child_pos = child_pos;
      t.children.push_back(std::move(cursor));
      enqueue_held_chunks(t, t.children.back());
    }
  }
  // Drain the cursors round-robin into the paced send queue, so the
  // instructor's uplink interleaves stripe trees fairly (a sequential
  // drain would delay one whole tree by the other's backlog).
  bool more = true;
  while (more) {
    more = false;
    for (ChildCursor& c : t.children) {
      if (c.pending.empty()) continue;
      enqueue_swarm_send(transfer_id, t,
                         {c.child, c.child_pos, c.pending.front(), false});
      c.pending.pop_front();
      more = true;
    }
  }
}

void StationNode::resend_swarm_begin(std::uint64_t transfer_id, const Transfer& t,
                                     const ChildCursor& c) {
  net::SwarmBegin begin;
  begin.transfer_id = transfer_id;
  begin.chunk_bytes = t.chunk_bytes;
  begin.trees = t.stripe_trees;
  Writer w;
  t.manifest.serialize(w);
  begin.manifest = w.take();
  net::Message out;
  out.from = self_;
  out.to = c.child;
  out.type = kSwarmBegin;
  out.payload = net::Payload{begin.encode()};
  out.wire_size = t.manifest.structure_bytes + out.payload.size();
  out.trace = obs::TraceContext{t.trace_id, t.span, t.trace_sampled};
  DistMetrics::get().swarm_begins.inc();
  (void)fabric_->send(std::move(out));
}

SimTime StationNode::swarm_pace_interval(const Transfer& t) const {
  // One chunk's serialization time on our own uplink (fabrics without a
  // link model fall back to the configured floor). Sending at most one
  // chunk per interval keeps the fabric's FIFO queue a chunk or two deep.
  double bps = fabric_->uplink_bps(self_);
  if (bps <= 0) bps = config_.min_bandwidth_bps;
  const double bytes = static_cast<double>(t.chunk_bytes) + net::kWireHeaderBytes;
  return SimTime::seconds(bytes * 8.0 / bps);
}

void StationNode::enqueue_swarm_send(std::uint64_t transfer_id, Transfer& t,
                                     SwarmSend entry) {
  (entry.serve ? t.swarm_serve_queue : t.swarm_queue).push_back(entry);
  if (t.pacing) return;
  t.pacing = true;
  // First send goes out immediately (cut-through); the timer only paces
  // the backlog behind it.
  swarm_pace_tick(transfer_id);
}

void StationNode::swarm_pace_tick(std::uint64_t transfer_id) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  // Swarm relays are unacked: a per-chunk ack would ride the child's
  // already-saturated uplink FIFO behind its own relays, and the window
  // stalls would halve pipeline throughput. Loss shows up as a bitmap
  // hole and is recovered by the rarest-first pull path instead.
  bool sent = false;
  while (!sent && !(t.swarm_queue.empty() && t.swarm_serve_queue.empty())) {
    // Relays before serves, but after serve_stride consecutive relays one
    // serve cuts in (see the queue comment in the header).
    const bool serve_turn =
        !t.swarm_serve_queue.empty() &&
        (t.swarm_queue.empty() ||
         t.relays_since_serve >= config_.swarm.serve_stride);
    std::deque<SwarmSend>& q =
        serve_turn ? t.swarm_serve_queue : t.swarm_queue;
    const SwarmSend entry = q.front();
    q.pop_front();
    if (dead_.contains(entry.to)) continue;
    if (t.sched && entry.peer_pos != 0) {
      const std::uint32_t ordinal = key_ordinal(entry.key);
      const std::uint32_t g = ordinal + 1 < t.chunk_prefix.size()
                                  ? t.chunk_prefix[ordinal] + key_index(entry.key)
                                  : 0;
      // A relay yields to the receiver's own pull of the chunk (its
      // pending bit); a serve IS that pull being answered, so it only
      // yields to confirmed possession.
      const bool covered = entry.serve ? t.sched->peer_has(entry.peer_pos, g)
                                       : t.sched->peer_covered(entry.peer_pos, g);
      if (ordinal + 1 < t.chunk_prefix.size() && covered) {
        // The receiver reported the chunk (or a request for it) after this
        // send was queued — drop it, count it.
        ++stats_.swarm_relay_suppressed;
        DistMetrics::get().swarm_suppressed.inc();
        continue;
      }
    }
    if (!send_chunk(transfer_id, t, entry.to, entry.key, /*req_id=*/0,
                    /*retransmit=*/false)
             .is_ok()) {
      continue;
    }
    sent = true;
    if (entry.serve) {
      t.relays_since_serve = 0;
      ++stats_.swarm_chunks_served;
      DistMetrics::get().swarm_served.inc();
    } else {
      ++t.relays_since_serve;
    }
  }
  if (!sent && t.swarm_queue.empty() && t.swarm_serve_queue.empty()) {
    // Idle tick with nothing left: the link goes quiet immediately.
    t.pacing = false;
    maybe_retire_transfer(transfer_id);
    return;
  }
  // Stay "busy" for one chunk-time after every send even if the queue is
  // momentarily empty — a relay enqueued a moment later must not bypass
  // the pace and burst onto the wire behind the chunk still serializing.
  t.pacing = true;
  t.pace_timer = fabric_->schedule_on(
      self_, swarm_pace_interval(t),
      [this, transfer_id] { swarm_pace_tick(transfer_id); });
}

void StationNode::schedule_swarm_tick(std::uint64_t transfer_id) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  it->second.gossip_timer =
      fabric_->schedule_on(self_, config_.swarm.gossip_interval,
                           [this, transfer_id] { on_swarm_tick(transfer_id); });
}

void StationNode::on_swarm_tick(std::uint64_t transfer_id) {
  auto it = transfers_.find(transfer_id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (!t.swarm || t.sched == nullptr || t.gossip_done) return;
  if (!fabric_->is_online(self_)) {
    // Crashed mid-transfer: the swarm is done with us. If we restart later
    // the blob-level pull/repair path catches us up; keeping the gossip
    // timer alive would run the simulation clock out to max_rounds.
    t.gossip_done = true;
    maybe_retire_transfer(transfer_id);
    return;
  }
  ++t.gossip_rounds;
  const SimTime now = fabric_->now();
  const std::uint64_t n = tree_order().size();
  const std::uint32_t total = static_cast<std::uint32_t>(t.total_chunks);
  // Stripe-ancestor adoption: while the closest expected ancestor of a
  // stripe tree stays gossip-silent past stall_timeout, walk one level up
  // and start gossiping with that ancestor too (one level per walk — each
  // adopted ancestor gets a full timeout to answer before we pass it).
  // Only the head of an orphaned subtree walks; its descendants keep
  // hearing their (recovering) parent.
  for (std::uint32_t tree = 0; tree < t.stripe_trees; ++tree) {
    const std::uint64_t ap = t.acting_parent[tree];
    if (ap == 0 || t.sched->complete()) continue;
    const SimTime heard = t.sched->peer_heard_at(ap);
    const SimTime ref = heard > t.acting_since[tree] ? heard : t.acting_since[tree];
    if (now - ref <= config_.swarm.stall_timeout) continue;
    auto up = swarm::stripe_parent(ap, tree, t.stripe_trees, m_, n);
    t.acting_parent[tree] = up.value_or(0);
    t.acting_since[tree] = now;
    if (up.has_value() && up.value() != position_) t.sched->add_peer(up.value());
  }
  // A child that has never gossiped may simply have lost its SwarmBegin
  // (it is sent once per stripe tree; a lossy link can drop every copy,
  // and gossip for an unknown transfer is discarded on arrival). After a
  // startup grace — a healthy child's first gossip arrives within a round
  // or two, and begins carry a whole manifest, so eager re-sends would
  // steal chunk-sized slots from the uplink right at ramp-up — re-send
  // every few rounds until the child speaks; begins are idempotent.
  if (t.gossip_rounds > 8 && t.gossip_rounds % 4 == 1) {
    std::set<std::uint64_t> silent;
    for (const ChildCursor& c : t.children) {
      if (c.child_pos < 1 || c.child_pos > n) continue;
      if (dead_.contains(c.child)) continue;
      if (t.sched->peer_heard_at(c.child_pos) != SimTime::zero()) continue;
      if (silent.insert(c.child_pos).second) resend_swarm_begin(transfer_id, t, c);
    }
  }
  // Advertised backlog approximates a new request's serve latency in
  // chunk-times, not raw queue length: while the uplink is relay-busy a
  // queued serve waits serve_stride relay slots per position, so each one
  // costs (stride + 1) chunk-times. A raw count makes a stride-throttled
  // interior server look as cheap as an idle leaf, and every requester
  // herds onto it.
  const std::size_t relay_q = t.swarm_queue.size();
  const std::size_t serve_q = t.swarm_serve_queue.size();
  // "Relay-busy" can't be read off the queue (cut-through keeps it near
  // empty between arrivals): a station with stripe children keeps relaying
  // until its own bitmap completes.
  const bool relay_busy = !t.children.empty() && !t.sched->complete();
  const std::size_t serve_cost =
      relay_busy ? std::min<std::size_t>(config_.swarm.serve_stride, 3) + 1 : 1;
  // The relay-busy base term prices the latency a FIRST serve would see
  // even with an empty queue: cut-through keeps a busy relay's queue near
  // zero between arrivals, and without the base term such a station
  // advertises the same zero as a genuinely idle leaf.
  const std::size_t base = relay_busy ? serve_cost : 0;
  const auto backlog = static_cast<std::uint32_t>(std::min<std::size_t>(
      base + relay_q + serve_q * serve_cost,
      std::numeric_limits<std::uint32_t>::max()));
  auto& dm = DistMetrics::get();
  // Our bitmap to every known peer — one refcounted buffer for all sends.
  // Gossip goes out BEFORE the termination check below: the round on which
  // a station terminates is the round its neighbors learn it is complete,
  // otherwise their view of us freezes one chunk short and they gossip
  // until max_rounds waiting for it.
  net::SwarmHave have;
  have.transfer_id = transfer_id;
  have.position = position_;
  have.backlog = backlog;
  have.recovering = t.sched->recovering_mask();
  have.total_chunks = total;
  have.words = t.sched->self().words();
  have.pending_words = t.sched->pending_words();
  const net::Payload have_payload{have.encode()};
  for (std::uint64_t pos : t.sched->peer_positions()) {
    if (pos < 1 || pos > n || pos == position_) continue;
    StationId peer = tree_order()[pos - 1];
    if (dead_.contains(peer)) continue;
    net::Message out;
    out.from = self_;
    out.to = peer;
    out.type = kSwarmHave;
    out.payload = have_payload;
    if (fabric_->send(std::move(out)).is_ok()) {
      ++stats_.swarm_haves_sent;
      dm.swarm_haves.inc();
    }
  }
  // Rarest-first pulls for stalled stripes, our bitmap piggybacked.
  for (const swarm::SwarmPlan& plan : t.sched->plan(now)) {
    if (plan.peer < 1 || plan.peer > n || plan.chunks.empty()) continue;
    StationId peer = tree_order()[plan.peer - 1];
    if (dead_.contains(peer)) continue;
    net::SwarmReq req;
    req.transfer_id = transfer_id;
    req.position = position_;
    req.backlog = backlog;
    req.indices = plan.chunks;
    req.total_chunks = total;
    req.have_words = t.sched->self().words();
    req.pending_words = t.sched->pending_words();
    net::Message out;
    out.from = self_;
    out.to = peer;
    out.type = kSwarmReq;
    out.payload = req.encode();
    if (fabric_->send(std::move(out)).is_ok()) {
      ++stats_.swarm_reqs_sent;
      stats_.swarm_chunks_requested += plan.chunks.size();
      dm.swarm_reqs.inc();
      dm.swarm_req_chunks.inc(plan.chunks.size());
    }
  }
  // Termination: stop once we are complete and, as far as gossip shows,
  // every neighbor is too — or nothing has changed and no needy neighbor
  // has been heard for idle_rounds (a crashed neighbor's bitmap freezes
  // forever; waiting on it would keep the whole cluster's timers alive).
  const std::uint64_t sum = t.sched->state_sum();
  const bool self_done = t.delivered && t.sched->complete();
  const bool quiet = sum == t.last_state_sum && !t.gossip_heard;
  t.idle_rounds = (self_done && quiet) ? t.idle_rounds + 1 : 0;
  t.last_state_sum = sum;
  t.gossip_heard = false;
  if (t.gossip_rounds >= config_.swarm.max_rounds ||
      (self_done &&
       (t.sched->peers_complete() || t.idle_rounds >= config_.swarm.idle_rounds))) {
    t.gossip_done = true;
    maybe_retire_transfer(transfer_id);
    return;
  }
  schedule_swarm_tick(transfer_id);
}

void StationNode::on_swarm_begin(const net::Message& msg) {
  auto begin = net::SwarmBegin::decode(msg.payload);
  if (!begin) {
    WDOC_ERROR("swarm begin decode failed: %s", begin.message().c_str());
    return;
  }
  Reader mr(begin.value().manifest);
  auto manifest = DocManifest::deserialize(mr);
  if (!manifest) {
    WDOC_ERROR("swarm begin manifest decode failed: %s", manifest.message().c_str());
    return;
  }
  ++stats_.pushes_received;
  const std::uint64_t transfer_id = begin.value().transfer_id;
  // A station is a child in several stripe trees: every tree's parent
  // announces, the first begin wins, the rest are idempotent no-ops (and
  // the redundancy is what makes a lost begin survivable under loss).
  if (transfers_.contains(transfer_id)) return;
  const DocManifest& m = manifest.value();
  Transfer t;
  t.manifest = m;
  t.chunk_bytes = begin.value().chunk_bytes;
  for (const BlobRef& b : m.blobs) {
    t.total_chunks += blob::chunk_count(b.size, t.chunk_bytes);
  }
  if (t.total_chunks > net::kMaxWireChunks) return;
  t.trace_id = msg.trace.trace_id;
  t.trace_sampled = msg.trace.sampled;
  t.span = obs::Tracer::global().begin("swarm.push.hop " + m.doc_key, msg.trace.span_id,
                                       fabric_->now(), self_.value(), t.trace_id);
  if (store_->doc(m.doc_key) == nullptr) (void)store_->put_reference(m);
  auto& bs = store_->blobs();
  for (const BlobRef& b : m.blobs) {
    if (bs.find(b.digest).has_value() || b.size == 0) continue;
    (void)bs.begin_partial(b.digest, b.size, b.type, t.chunk_bytes);
  }
  auto [it, inserted] = transfers_.emplace(transfer_id, std::move(t));
  WDOC_CHECK(inserted, "duplicate transfer id");
  // The stripe count comes from the wire, not local config — the whole
  // cluster must agree on the forest geometry.
  init_swarm(transfer_id, it->second, begin.value().trees);
  open_swarm_children(transfer_id, it->second);
  if (transfer_blobs_complete(it->second)) deliver_transfer(transfer_id);
  maybe_retire_transfer(transfer_id);
}

bool StationNode::position_matches(std::uint64_t position, StationId from) const {
  return position >= 1 && position <= tree_order().size() &&
         tree_order()[position - 1] == from;
}

void StationNode::on_swarm_have(const net::Message& msg) {
  auto have = net::SwarmHave::decode(msg.payload);
  if (!have) return;
  const net::SwarmHave& h = have.value();
  auto it = transfers_.find(h.transfer_id);
  if (it == transfers_.end()) {
    DistMetrics::get().swarm_orphans.inc();
    return;
  }
  Transfer& t = it->second;
  if (!t.swarm || t.sched == nullptr) return;
  if (std::uint64_t{h.total_chunks} != t.total_chunks) return;  // geometry mismatch
  if (!position_matches(h.position, msg.from)) return;
  swarm::PeerReport report;
  report.have = &h.words;
  report.pending = &h.pending_words;
  report.backlog = h.backlog;
  report.recovering = h.recovering;
  report.now = fabric_->now();
  t.sched->peer_update(h.position, report);
  // Only an *incomplete* neighbor holds this transfer open — it may still
  // need our serves. Completed neighbors echoing their full bitmaps must
  // not reset the idle countdown, or the cluster keep-alives itself to
  // max_rounds after everyone is done.
  if (!t.sched->peer_complete(h.position)) t.gossip_heard = true;
}

void StationNode::on_swarm_req(const net::Message& msg) {
  auto req = net::SwarmReq::decode(msg.payload);
  if (!req) return;
  const net::SwarmReq& q = req.value();
  auto it = transfers_.find(q.transfer_id);
  if (it == transfers_.end()) {
    DistMetrics::get().swarm_orphans.inc();
    return;
  }
  Transfer& t = it->second;
  if (!t.swarm || t.sched == nullptr) return;
  if (std::uint64_t{q.total_chunks} != t.total_chunks) return;
  if (!position_matches(q.position, msg.from)) return;
  t.gossip_heard = true;  // an explicit request is always a sign of need
  // A request doubles as gossip: the piggybacked bitmaps update our view
  // (and suppress future relays of chunks the requester has or is pulling).
  swarm::PeerReport report;
  report.have = &q.have_words;
  report.pending = &q.pending_words;
  report.backlog = q.backlog;
  report.now = fabric_->now();
  t.sched->peer_update(q.position, report);
  std::uint32_t queued = 0;
  for (std::uint32_t g : q.indices) {
    if (queued >= config_.swarm.request_batch) break;  // hostile-length guard
    // g -> (ordinal, index) through the prefix table; zero-chunk blobs make
    // prefix values repeat, so take the last blob whose base covers g.
    auto ub = std::upper_bound(t.chunk_prefix.begin(), t.chunk_prefix.end(), g);
    if (ub == t.chunk_prefix.begin()) continue;
    const auto ordinal = static_cast<std::uint32_t>(ub - t.chunk_prefix.begin()) - 1;
    if (ordinal >= t.manifest.blobs.size()) continue;
    const std::uint32_t index = g - t.chunk_prefix[ordinal];
    // Serves share the paced send queue with stripe relays, so a burst of
    // requests can't stack a multi-second FIFO on our uplink. Chunks we
    // don't hold fail the send at pace time and the requester re-plans.
    enqueue_swarm_send(q.transfer_id, t,
                       {msg.from, q.position, chunk_key(ordinal, index), true});
    ++queued;
  }
}

Status StationNode::pull_blob_chunks(BlobPull pull) {
  auto& bs = store_->blobs();
  if (bs.find(pull.blob.digest).has_value() || pull.blob.size == 0) {
    pull.done(Status::ok(), fabric_->now());
    return Status::ok();
  }
  // Resume an existing partial at its own geometry; otherwise open one at
  // this node's configured chunk size.
  const blob::BlobStore::PartialInfo* p = bs.partial(pull.blob.digest);
  pull.chunk_bytes = p != nullptr ? p->chunk_bytes : config_.chunk.chunk_bytes;
  WDOC_TRY(bs.begin_partial(pull.blob.digest, pull.blob.size, pull.blob.type,
                            pull.chunk_bytes)
               .status());
  const std::size_t missing =
      bs.missing_chunks(pull.blob.digest,
                        std::numeric_limits<std::uint32_t>::max())
          .size();
  auto shared = std::make_shared<BlobPull>(std::move(pull));
  return start_pull_round(std::move(shared), missing);
}

Status StationNode::start_pull_round(std::shared_ptr<BlobPull> pull,
                                     std::size_t missing_before) {
  const std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  net::RpcOptions opts = pull->base;
  // The server streams up to repair_batch chunks ahead of its summary;
  // scale this round's deadline by that serialized burst.
  const std::uint64_t batch =
      std::min<std::uint64_t>(missing_before, config_.chunk.repair_batch);
  opts.deadline += SimTime::seconds(static_cast<double>(batch) *
                                    static_cast<double>(pull->chunk_bytes) * 8.0 /
                                    config_.min_bandwidth_bps);
  rpc_.track<std::uint32_t>(
      req_id, opts,
      [this, pull, missing_before, req_id](Result<std::uint32_t> r, SimTime t) {
        rpc_target_.erase(req_id);
        auto& bs = store_->blobs();
        if (bs.find(pull->blob.digest).has_value()) {
          pull->done(Status::ok(), t);
          return;
        }
        if (!r) {
          pull->done(r.status(), t);
          return;
        }
        const std::size_t now_missing =
            bs.missing_chunks(pull->blob.digest,
                              std::numeric_limits<std::uint32_t>::max())
                .size();
        if (now_missing < missing_before) {
          // Progress: keep pulling. The next round re-routes, so a repaired
          // parent chain (or resurrected holder) is picked up mid-pull.
          Status s = start_pull_round(pull, now_missing);
          if (!s.is_ok()) pull->done(s, t);
          return;
        }
        pull->done({Errc::unavailable, "chunk repair made no progress"}, t);
      },
      [this, pull, req_id](std::uint32_t) { return send_chunk_req(req_id, *pull); });
  Status s = send_chunk_req(req_id, *pull);
  if (!s.is_ok()) {
    rpc_.cancel(req_id);
    rpc_target_.erase(req_id);
    return s;
  }
  DistMetrics::get().chunk_repair_reqs.inc();
  return Status::ok();
}

Status StationNode::send_chunk_req(std::uint64_t req_id, const BlobPull& pull) {
  // Route: pinned holder if given, else the nearest live ancestor, else the
  // document's home station (the instructor always holds the full blob).
  std::optional<StationId> target = pull.holder;
  if (!target.has_value()) target = live_parent_station();
  if (!target.has_value() && pull.home.value() != 0 && pull.home != self_) {
    target = pull.home;
  }
  if (!target.has_value()) return {Errc::unavailable, "no route for chunk repair"};
  auto missing =
      store_->blobs().missing_chunks(pull.blob.digest, config_.chunk.repair_batch);
  if (missing.empty()) return {Errc::already_exists, "no chunks missing"};
  rpc_target_[req_id] = *target;
  net::ChunkReq q;
  q.req_id = req_id;
  q.doc_key = pull.doc_key;
  q.digest = pull.blob.digest;
  q.size = pull.blob.size;
  q.media_type = static_cast<std::uint8_t>(pull.blob.type);
  q.chunk_bytes = pull.chunk_bytes;
  q.indices = std::move(missing);
  net::Message out;
  out.from = self_;
  out.to = *target;
  out.type = kChunkReq;
  out.payload = q.encode();
  return fabric_->send(std::move(out));
}

Status StationNode::repair_pull(const DocManifest& manifest, FetchCallback cb,
                                std::optional<net::RpcOptions> options) {
  if (store_->doc(manifest.doc_key) == nullptr) {
    WDOC_TRY(store_->put_reference(manifest));
  }
  if (store_->has_materialized(manifest.doc_key)) {
    cb(manifest, fabric_->now());
    return Status::ok();
  }
  auto& bs = store_->blobs();
  std::vector<BlobRef> incomplete;
  for (const BlobRef& b : manifest.blobs) {
    if (b.size != 0 && !bs.find(b.digest).has_value()) incomplete.push_back(b);
  }
  if (incomplete.empty()) {
    const StoredDoc* d = store_->doc(manifest.doc_key);
    if (d != nullptr && d->form == ObjectForm::reference) {
      WDOC_TRY(store_->materialize(manifest.doc_key, /*ephemeral=*/true));
    }
    cb(manifest, fabric_->now());
    return Status::ok();
  }
  struct RepairState {
    std::size_t remaining = 0;
    Status first_error = Status::ok();
    DocManifest manifest;
    FetchCallback cb;
  };
  auto state = std::make_shared<RepairState>();
  state->remaining = incomplete.size();
  state->manifest = manifest;
  state->cb = std::move(cb);
  const net::RpcOptions base = options.value_or(config_.rpc);
  std::size_t started = 0;
  for (const BlobRef& b : incomplete) {
    BlobPull pull;
    pull.doc_key = manifest.doc_key;
    pull.blob = b;
    pull.home = manifest.home;
    pull.base = base;
    pull.done = [this, state](Status s, SimTime t) {
      if (!s.is_ok() && state->first_error.is_ok()) state->first_error = s;
      if (--state->remaining != 0) return;
      auto& store_bs = store_->blobs();
      bool complete = true;
      for (const BlobRef& blob : state->manifest.blobs) {
        if (blob.size != 0 && !store_bs.find(blob.digest).has_value()) {
          complete = false;
          break;
        }
      }
      if (complete) {
        const StoredDoc* d = store_->doc(state->manifest.doc_key);
        if (d != nullptr && d->form == ObjectForm::reference) {
          (void)store_->materialize(state->manifest.doc_key, /*ephemeral=*/true);
        }
        state->cb(state->manifest, t);
        return;
      }
      Status err = state->first_error.is_ok()
                       ? Status{Errc::unavailable, "repair incomplete"}
                       : state->first_error;
      state->cb(Result<DocManifest>(err.error()), t);
    };
    Status s = pull_blob_chunks(std::move(pull));
    if (!s.is_ok()) {
      // Account the failed start without firing cb from inside the loop.
      if (state->first_error.is_ok()) state->first_error = s;
      --state->remaining;
      continue;
    }
    ++started;
  }
  if (started == 0) {
    return state->first_error.is_ok()
               ? Status{Errc::unavailable, "repair could not start"}
               : state->first_error;
  }
  return Status::ok();
}

void StationNode::on_message(const net::Message& msg) {
  // Any traffic from a station is proof of life: clear its suspicion and
  // resurrect it if it was declared dead (crash + restart, healed link).
  note_alive(msg.from);
  if (msg.type == kPush) {
    on_push(msg);
  } else if (msg.type == kRefAnnounce) {
    on_ref_announce(msg);
  } else if (msg.type == kFetchReq) {
    on_fetch_req(msg);
  } else if (msg.type == kFetchRsp) {
    on_fetch_rsp(msg);
  } else if (msg.type == kFetchErr) {
    on_fetch_err(msg);
  } else if (msg.type == kBlobReq) {
    on_blob_req(msg);
  } else if (msg.type == kBlobRsp) {
    on_blob_rsp(msg);
  } else if (msg.type == kChunkBegin) {
    on_chunk_begin(msg);
  } else if (msg.type == kChunkData) {
    on_chunk_data(msg);
  } else if (msg.type == kChunkAck) {
    on_chunk_ack(msg);
  } else if (msg.type == kChunkReq) {
    on_chunk_req(msg);
  } else if (msg.type == kChunkRsp) {
    on_chunk_rsp(msg);
  } else if (msg.type == kSwarmBegin) {
    on_swarm_begin(msg);
  } else if (msg.type == kSwarmHave) {
    on_swarm_have(msg);
  } else if (msg.type == kSwarmReq) {
    on_swarm_req(msg);
  } else if (msg.type == net::kMetricsRequest) {
    on_scrape_req(msg);
  } else if (msg.type == net::kMetricsResponse) {
    on_scrape_rsp(msg);
  } else {
    WDOC_WARN("station %llu: unknown message type %s",
              static_cast<unsigned long long>(self_.value()), msg.type.c_str());
  }
}

void StationNode::on_push(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) {
    WDOC_ERROR("push decode failed: %s", manifest.message().c_str());
    return;
  }
  ++stats_.pushes_received;
  const DocManifest& m = manifest.value();
  // Child span of the sender's push span: the trace mirrors the m-ary tree.
  auto& tracer = obs::Tracer::global();
  std::uint64_t span = tracer.begin("dist.push.hop " + m.doc_key, msg.trace.span_id,
                                    fabric_->now(), self_.value(), msg.trace.trace_id);
  const StoredDoc* existing = store_->doc(m.doc_key);
  if (existing == nullptr) {
    Status s = store_->put_instance(m, /*ephemeral=*/true);
    if (!s.is_ok()) {
      WDOC_WARN("station %llu: push store failed: %s",
                static_cast<unsigned long long>(self_.value()), s.message().c_str());
    }
  } else if (existing->form == ObjectForm::reference) {
    (void)store_->materialize(m.doc_key, /*ephemeral=*/true);
  }
  last_delivery_ = fabric_->now();
  // Forward down the tree.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
      Status s = send_push(tree_order()[child - 1], m,
                           obs::TraceContext{msg.trace.trace_id, span, msg.trace.sampled});
      if (s.is_ok()) ++stats_.pushes_forwarded;
    }
  }
  tracer.end(span, fabric_->now());
}

Status StationNode::announce_reference(const DocManifest& manifest) {
  if (position_ == 0) return {Errc::invalid_argument, "station not in broadcast tree"};
  Writer w;
  manifest.serialize(w);
  // One refcounted manifest buffer shared across the whole fan-out.
  const net::Payload payload{w.take()};
  for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
    net::Message msg;
    msg.from = self_;
    msg.to = tree_order()[child - 1];
    msg.type = kRefAnnounce;
    msg.payload = payload;
    // Reference records are structure-free: only the manifest crosses the
    // wire (charged at payload size), not the document.
    WDOC_TRY(fabric_->send(std::move(msg)));
  }
  return Status::ok();
}

void StationNode::on_ref_announce(const net::Message& msg) {
  Reader r(msg.payload);
  auto manifest = DocManifest::deserialize(r);
  if (!manifest) return;
  const DocManifest& m = manifest.value();
  if (store_->doc(m.doc_key) == nullptr) {
    (void)store_->put_reference(m);
  }
  // Forward down the tree: the received slice itself, refcounted.
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
      net::Message out;
      out.from = self_;
      out.to = tree_order()[child - 1];
      out.type = kRefAnnounce;
      out.payload = msg.payload;
      (void)fabric_->send(std::move(out));
    }
  }
}

// --- pull --------------------------------------------------------------------

Status StationNode::send_fetch_req(std::uint64_t req_id, const std::string& doc_key) {
  // Route per attempt: parent chain skipping declared-dead ancestors. When
  // the whole ancestry is suspected dead, probe the direct parent anyway —
  // suspicion is not certainty, and any reply resurrects it. With no tree
  // at all, go straight to the document's home.
  std::optional<StationId> target = live_parent_station();
  if (!target) target = parent_station();
  if (!target) {
    const StoredDoc* d = store_->doc(doc_key);
    if (d != nullptr && d->manifest.home.valid() && d->manifest.home != self_) {
      target = d->manifest.home;
    } else {
      return {Errc::unavailable, "no parent and no home reference for " + doc_key};
    }
  }
  rpc_target_[req_id] = *target;
  FetchReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.path.push_back(self_);
  net::Message msg;
  msg.from = self_;
  msg.to = *target;
  msg.type = kFetchReq;
  msg.payload = req.encode();
  return fabric_->send(std::move(msg));
}

Status StationNode::fetch(const std::string& doc_key, FetchCallback cb,
                          std::optional<net::RpcOptions> options) {
  const StoredDoc* d = store_->doc(doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    ++stats_.fetches_local;
    cb(d->manifest, fabric_->now());
    return Status::ok();
  }
  ++stats_.fetches_remote;
  DistMetrics::get().pulls.inc();

  net::RpcOptions opts = options.value_or(config_.rpc);
  if (d != nullptr) {
    // A local reference knows the document's size: give each attempt room
    // for the transfer itself on the slowest link this cluster models,
    // just as fetch_blob does.
    opts.deadline += SimTime::seconds(
        static_cast<double>(d->manifest.total_bytes()) * 8.0 / config_.min_bandwidth_bps);
  }
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  std::string key = doc_key;
  rpc_.track<DocManifest>(
      req_id, opts,
      [this, req_id, cb = std::move(cb)](Result<DocManifest> r, SimTime t) {
        rpc_target_.erase(req_id);
        if (!r.is_ok()) {
          ++stats_.failed_fetches;
          DistMetrics::get().failed_fetches.inc();
        }
        cb(std::move(r), t);
      },
      [this, req_id, key](std::uint32_t) { return send_fetch_req(req_id, key); });
  Status s = send_fetch_req(req_id, doc_key);
  if (!s.is_ok()) {
    // Never left the station: unwind the tracker and report synchronously,
    // preserving the historical "no route" contract.
    rpc_.cancel(req_id);
    rpc_target_.erase(req_id);
    --stats_.fetches_remote;
    ++stats_.failed_fetches;
    DistMetrics::get().failed_fetches.inc();
    return s;
  }
  return Status::ok();
}

void StationNode::on_fetch_req(const net::Message& msg) {
  auto req = FetchReq::decode(msg.payload);
  if (!req) return;
  FetchReq& q = req.value();

  const StoredDoc* d = store_->doc(q.doc_key);
  if (d != nullptr && d->form != ObjectForm::reference) {
    // Serve: relay the data back down the request path, store-and-forward.
    ++stats_.serves;
    DistMetrics::get().serves.inc();
    FetchRsp rsp;
    rsp.req_id = q.req_id;
    rsp.manifest = d->manifest;
    rsp.path = q.path;
    StationId next = rsp.path.back();
    rsp.path.pop_back();
    net::Message out;
    out.from = self_;
    out.to = next;
    out.type = kFetchRsp;
    out.payload = rsp.encode();
    out.wire_size = d->manifest.total_bytes();
    (void)fabric_->send(std::move(out));
    return;
  }

  // Not here: forward up the live chain (or probe the direct parent when
  // the whole ancestry is suspected dead — only a true root gives up).
  std::optional<StationId> up = live_parent_station();
  if (!up) up = parent_station();
  if (!up) {
    // Root (or an effective root with its ancestry dead) without the
    // document: report failure back to the originator.
    FetchErr err;
    err.req_id = q.req_id;
    err.doc_key = q.doc_key;
    err.code = Errc::not_found;
    net::Message out;
    out.from = self_;
    out.to = q.path.front();
    out.type = kFetchErr;
    out.payload = err.encode();
    (void)fabric_->send(std::move(out));
    return;
  }
  ++stats_.forwards_up;
  q.path.push_back(self_);
  net::Message out;
  out.from = self_;
  out.to = *up;
  out.type = kFetchReq;
  out.payload = q.encode();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_rsp(const net::Message& msg) {
  auto rsp = FetchRsp::decode(msg.payload);
  if (!rsp) return;
  FetchRsp& r = rsp.value();

  if (r.path.empty()) {
    // Final delivery to the originator. The store bookkeeping happens
    // regardless of rpc state: a response that arrives after its request
    // already resolved (a retry raced the original answer, or the attempt
    // budget ran out while the data was in flight) still carries the
    // document — wasting it would only force another full transfer.
    const std::string& key = r.manifest.doc_key;
    const StoredDoc* d = store_->doc(key);
    if (d == nullptr) {
      (void)store_->put_reference(r.manifest);
      d = store_->doc(key);
    }
    std::uint64_t count = store_->note_remote_retrieval(key);
    if (count >= config_.watermark && d != nullptr &&
        d->form == ObjectForm::reference) {
      // Watermark hit: copy the physical multimedia data locally.
      Status s = store_->materialize(key, /*ephemeral=*/true);
      if (s.is_ok()) {
        ++stats_.replications;
        DistMetrics::get().replications.inc();
        obs::FlightRecorder::global().record(
            obs::FlightKind::replication,
            key + " retrieval " + std::to_string(count) + "/" +
                std::to_string(config_.watermark) + ": materialized locally",
            self_.value(), 0, fabric_->now());
      }
    }
    // The callback fires exactly once: a duplicate is counted and ignored.
    if (!rpc_.in_flight(r.req_id)) {
      rpc_.note_duplicate();
      return;
    }
    (void)rpc_.complete<DocManifest>(r.req_id, r.manifest);
    return;
  }

  // Intermediate hop: relay downward (store-and-forward).
  ++stats_.relays;
  if (config_.relay_cache) {
    const StoredDoc* d = store_->doc(r.manifest.doc_key);
    if (d == nullptr) {
      (void)store_->put_instance(r.manifest, /*ephemeral=*/true);
    } else if (d->form == ObjectForm::reference) {
      (void)store_->materialize(r.manifest.doc_key, /*ephemeral=*/true);
    }
  }
  StationId next = r.path.back();
  r.path.pop_back();
  net::Message out;
  out.from = self_;
  out.to = next;
  out.type = kFetchRsp;
  out.payload = r.encode();
  out.wire_size = r.manifest.total_bytes();
  (void)fabric_->send(std::move(out));
}

void StationNode::on_fetch_err(const net::Message& msg) {
  auto err = FetchErr::decode(msg.payload);
  if (!err) return;
  rpc_.fail(err.value().req_id,
            Error{err.value().code,
                  "document not found in tree: " + err.value().doc_key});
}

// --- blobs -------------------------------------------------------------------

Status StationNode::send_blob_req(std::uint64_t req_id, StationId holder,
                                  const std::string& doc_key, const BlobRef& blob) {
  rpc_target_[req_id] = holder;
  BlobReq req;
  req.req_id = req_id;
  req.doc_key = doc_key;
  req.digest = blob.digest;
  req.size = blob.size;
  req.type = blob.type;
  net::Message msg;
  msg.from = self_;
  msg.to = holder;
  msg.type = kBlobReq;
  msg.payload = req.encode();
  return fabric_->send(std::move(msg));
}

Status StationNode::fetch_blob_rpc(StationId holder, const std::string& doc_key,
                                   const BlobRef& blob, BlobFetchCallback cb,
                                   std::optional<net::RpcOptions> options) {
  // Already resident (e.g. a previous fetch or a pushed lecture): no wire
  // traffic needed.
  if (store_->blobs().find(blob.digest).has_value()) {
    ++stats_.fetches_local;
    cb(blob, fabric_->now());
    return Status::ok();
  }
  // Large blobs (and blobs already partially assembled) stream at chunk
  // granularity from the pinned holder — an interrupted fetch resumes from
  // the bitmap instead of restarting the whole transfer.
  if (config_.chunk.enabled &&
      (blob.size > config_.chunk.chunk_bytes ||
       store_->blobs().partial(blob.digest) != nullptr)) {
    BlobPull pull;
    pull.doc_key = doc_key;
    pull.blob = blob;
    pull.holder = holder;
    pull.home = holder;
    pull.base = options.value_or(config_.rpc);
    BlobRef want = blob;
    pull.done = [cb = std::move(cb), want](Status s, SimTime t) {
      if (s.is_ok()) {
        cb(want, t);
      } else {
        cb(Result<BlobRef>(s.error()), t);
      }
    };
    return pull_blob_chunks(std::move(pull));
  }
  net::RpcOptions opts = options.value_or(config_.rpc);
  // The payload serializes on both endpoints' links; give each attempt room
  // for the transfer itself on the slowest link this cluster models.
  opts.deadline += SimTime::seconds(static_cast<double>(blob.size) * 8.0 /
                                    config_.min_bandwidth_bps);
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  std::string key = doc_key;
  BlobRef want = blob;
  rpc_.track<BlobRef>(
      req_id, opts,
      [this, req_id, cb = std::move(cb)](Result<BlobRef> r, SimTime t) {
        rpc_target_.erase(req_id);
        cb(std::move(r), t);
      },
      [this, req_id, holder, key, want](std::uint32_t) {
        return send_blob_req(req_id, holder, key, want);
      });
  Status s = send_blob_req(req_id, holder, doc_key, blob);
  if (!s.is_ok()) {
    rpc_.cancel(req_id);
    rpc_target_.erase(req_id);
    return s;
  }
  return Status::ok();
}

void StationNode::on_blob_req(const net::Message& msg) {
  auto req = BlobReq::decode(msg.payload);
  if (!req) return;
  ++stats_.blob_serves;
  DistMetrics::get().blob_serves.inc();
  BlobRsp rsp;
  rsp.req_id = req.value().req_id;
  rsp.blob.digest = req.value().digest;
  rsp.blob.size = req.value().size;
  rsp.blob.type = req.value().type;
  net::Message out;
  out.from = self_;
  out.to = msg.from;
  out.type = kBlobRsp;
  out.payload = rsp.encode();
  out.wire_size = req.value().size;  // payload bytes charged on the wire
  (void)fabric_->send(std::move(out));
}

void StationNode::on_blob_rsp(const net::Message& msg) {
  auto rsp = BlobRsp::decode(msg.payload);
  if (!rsp) return;
  const BlobRsp& r = rsp.value();
  if (!rpc_.in_flight(r.req_id)) {
    // A retried request's extra response: counted and ignored.
    rpc_.note_duplicate();
    return;
  }
  // The payload now lives locally (ephemeral buffer: zero refs, reclaimable
  // by gc until a document instance claims it).
  auto id = store_->blobs().put_synthetic(r.blob.digest, r.blob.size, r.blob.type);
  if (id) {
    (void)store_->blobs().release(id.value());
  }
  (void)rpc_.complete<BlobRef>(r.req_id, r.blob);
}

std::uint64_t StationNode::end_lecture() {
  std::uint64_t demoted = 0;
  for (const std::string& key : store_->keys()) {
    const StoredDoc* d = store_->doc(key);
    if (d != nullptr && d->form == ObjectForm::instance && d->ephemeral) {
      if (store_->demote_to_reference(key).is_ok()) {
        ++demoted;
        ++stats_.demotions;
        DistMetrics::get().migrations.inc();
      }
    }
  }
  // "Essentially, buffer spaces are used only" — reclaim them.
  std::uint64_t reclaimed = store_->blobs().gc();
  if (demoted > 0) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::migration,
        std::to_string(demoted) + " instance(s) demoted to references, " +
            std::to_string(reclaimed) + " B reclaimed",
        self_.value(), 0, fabric_->now());
  }
  return reclaimed;
}

// --- observability plane -----------------------------------------------------

obs::Snapshot StationNode::local_snapshot() const {
  obs::Labels labels{{"station", std::to_string(self_.value())}};
  obs::Snapshot snap;
  auto counter = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::counter;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  auto gauge = [&](const char* name, std::uint64_t v) {
    obs::MetricSample s;
    s.name = name;
    s.labels = labels;
    s.kind = obs::MetricSample::Kind::gauge;
    s.value = static_cast<double>(v);
    snap.samples.push_back(std::move(s));
  };
  const net::RpcStats rpc = rpc_.stats();
  counter("station.blob_serves", stats_.blob_serves);
  counter("station.chunk_duplicate_rx", stats_.chunk_duplicate_rx);
  counter("station.chunk_duplicates", stats_.chunk_duplicates);
  counter("station.chunk_rejects", stats_.chunk_rejects);
  counter("station.chunk_repair_served", stats_.chunk_repair_served);
  counter("station.chunk_retransmits", stats_.chunk_retransmits);
  counter("station.chunk_wasted_bytes", stats_.chunk_wasted_bytes);
  counter("station.chunks_received", stats_.chunks_received);
  counter("station.chunks_sent", stats_.chunks_sent);
  counter("station.demotions", stats_.demotions);
  counter("station.failed_fetches", stats_.failed_fetches);
  counter("station.failovers", stats_.failovers);
  counter("station.fetches_local", stats_.fetches_local);
  counter("station.fetches_remote", stats_.fetches_remote);
  counter("station.forwards_up", stats_.forwards_up);
  counter("station.pushes_forwarded", stats_.pushes_forwarded);
  counter("station.pushes_received", stats_.pushes_received);
  counter("station.relays", stats_.relays);
  counter("station.replications", stats_.replications);
  counter("station.resurrections", stats_.resurrections);
  counter("station.rpc_exhausted", rpc.exhausted);
  counter("station.rpc_retries", rpc.retries);
  counter("station.rpc_timeouts", rpc.attempt_timeouts);
  counter("station.serves", stats_.serves);
  gauge("station.disk_bytes", store_->disk_bytes());
  gauge("station.docs", store_->doc_count());
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.key() < b.key();
            });
  return snap;
}

Status StationNode::scrape_tree_rpc(SnapshotCallback cb) {
  std::uint64_t req_id = (self_.value() << 24) | ++next_req_;
  return start_scrape(req_id, std::nullopt, std::move(cb));
}

Status StationNode::send_scrape_rsp(StationId to, std::uint64_t req_id,
                                    const obs::Snapshot& snap) {
  net::Message out;
  out.from = self_;
  out.to = to;
  out.type = net::kMetricsResponse;
  Writer w;
  w.u64(req_id);
  obs::encode_snapshot(w, snap);
  out.payload = w.take();
  return fabric_->send(std::move(out));
}

Status StationNode::start_scrape(std::uint64_t req_id,
                                 std::optional<StationId> reply_to,
                                 SnapshotCallback cb) {
  // Duplicate request for an in-flight merge — a retried scrape, or a
  // station covered twice while tree views are momentarily inconsistent.
  // Register the requester as an extra waiter: the merge in flight answers
  // everyone when it completes. Fanning out again would clobber it.
  auto in_flight = pending_scrapes_.find(req_id);
  if (in_flight != pending_scrapes_.end()) {
    if (reply_to) {
      auto& waiters = in_flight->second.reply_to;
      if (std::find(waiters.begin(), waiters.end(), *reply_to) == waiters.end()) {
        waiters.push_back(*reply_to);
      }
    }
    return Status::ok();
  }
  // A retry that crossed the completed merge's response on the wire: answer
  // from the cache instead of re-running the whole subtree fan-out.
  for (const auto& [done_id, snap] : recent_merges_) {
    if (done_id == req_id) {
      return reply_to ? send_scrape_rsp(*reply_to, req_id, snap) : Status::ok();
    }
  }

  PendingScrape pending;
  if (reply_to) pending.reply_to.push_back(*reply_to);
  pending.cb = std::move(cb);
  pending.acc = local_snapshot();

  std::vector<StationId> targets;
  if (position_ != 0) {
    for (std::uint64_t child : children_of(position_, m_, tree_order().size())) {
      targets.push_back(tree_order()[child - 1]);
    }
  }
  pending.outstanding = targets.size();
  if (!targets.empty()) {
    // A dead subtree must not hang the merge (and everything above it)
    // forever: after a deadline scaled by how deep below us the slowest
    // answer can originate, deliver what has arrived.
    std::uint64_t height =
        position_ == 0 ? 1 : subtree_height(position_, m_, tree_order().size());
    pending.timer =
        fabric_->schedule_on(self_, config_.rpc.deadline * static_cast<std::int64_t>(height + 1),
                             [this, req_id] { on_scrape_deadline(req_id); });
  }
  pending_scrapes_[req_id] = std::move(pending);

  for (StationId child : targets) {
    net::Message msg;
    msg.from = self_;
    msg.to = child;
    msg.type = net::kMetricsRequest;
    Writer w;
    w.u64(req_id);
    msg.payload = w.take();
    Status s = fabric_->send(std::move(msg));
    if (!s.is_ok()) {
      // An unreachable child still has to be accounted for, or the merge
      // would wait forever. Its subtree is simply absent from the result.
      --pending_scrapes_[req_id].outstanding;
      WDOC_WARN("station %llu: scrape fan-out to %llu failed: %s",
                static_cast<unsigned long long>(self_.value()),
                static_cast<unsigned long long>(child.value()), s.message().c_str());
    }
  }
  finish_scrape_if_done(req_id);
  return Status::ok();
}

void StationNode::on_scrape_req(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  (void)start_scrape(req_id.value(), msg.from, nullptr);
}

void StationNode::on_scrape_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto it = pending_scrapes_.find(req_id.value());
  if (it == pending_scrapes_.end()) {
    // Merge already completed (deadline fired, or a duplicate child
    // answer): counted and ignored.
    rpc_.note_duplicate();
    return;
  }
  auto child_snap = obs::decode_snapshot(r);
  if (!child_snap) {
    WDOC_WARN("station %llu: bad scrape response from %llu: %s",
              static_cast<unsigned long long>(self_.value()),
              static_cast<unsigned long long>(msg.from.value()),
              child_snap.message().c_str());
  } else {
    obs::merge_snapshot(it->second.acc, child_snap.value());
  }
  if (it->second.outstanding > 0) --it->second.outstanding;
  finish_scrape_if_done(req_id.value());
}

void StationNode::on_scrape_deadline(std::uint64_t req_id) {
  auto it = pending_scrapes_.find(req_id);
  if (it == pending_scrapes_.end()) return;
  DistMetrics::get().scrape_partials.inc();
  obs::FlightRecorder::global().record(
      obs::FlightKind::scrape,
      "scrape merge timed out with " + std::to_string(it->second.outstanding) +
          " child subtree(s) missing: delivering partial merge",
      self_.value(), req_id, fabric_->now());
  it->second.outstanding = 0;
  finish_scrape_if_done(req_id);
}

void StationNode::finish_scrape_if_done(std::uint64_t req_id) {
  auto it = pending_scrapes_.find(req_id);
  if (it == pending_scrapes_.end() || it->second.outstanding != 0) return;
  PendingScrape done = std::move(it->second);
  pending_scrapes_.erase(it);
  if (done.timer) done.timer->store(true);
  // Keep the merge around briefly for retries that crossed it on the wire.
  recent_merges_.emplace_back(req_id, done.acc);
  if (recent_merges_.size() > kRecentMerges) recent_merges_.pop_front();
  for (StationId waiter : done.reply_to) {
    (void)send_scrape_rsp(waiter, req_id, done.acc);
  }
  if (done.cb) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::scrape,
        "scrape merged " + std::to_string(done.acc.samples.size()) + " sample(s)",
        self_.value(), 0, fabric_->now());
    done.cb(std::move(done.acc), fabric_->now());
  }
}

}  // namespace wdoc::dist

#include "dist/mtree.hpp"

#include <cmath>

namespace wdoc::dist {

std::vector<std::uint64_t> children_of(std::uint64_t n, std::uint64_t m, std::uint64_t N) {
  std::vector<std::uint64_t> out;
  WDOC_CHECK(m >= 1 && n >= 1, "children_of: bad arguments");
  out.reserve(m);
  for (std::uint64_t i = 1; i <= m; ++i) {
    std::uint64_t c = child_position(n, i, m);
    if (c > N) break;
    out.push_back(c);
  }
  return out;
}

std::uint64_t subtree_height(std::uint64_t k, std::uint64_t m, std::uint64_t N) {
  WDOC_CHECK(k >= 1 && m >= 1, "subtree_height: bad arguments");
  // Breadth-first filling means the leftmost descendant chain of k is the
  // deepest one present: follow first children until we fall off the tree.
  std::uint64_t height = 0;
  for (std::uint64_t pos = k;;) {
    std::uint64_t c = child_position(pos, 1, m);
    if (c > N) break;
    pos = c;
    ++height;
  }
  return height;
}

std::uint64_t depth_of(std::uint64_t k, std::uint64_t m) {
  WDOC_CHECK(k >= 1 && m >= 1, "depth_of: bad arguments");
  std::uint64_t depth = 0;
  while (k > 1) {
    k = parent_position(k, m);
    ++depth;
  }
  return depth;
}

std::uint64_t tree_depth(std::uint64_t N, std::uint64_t m) {
  // Deepest node is the last to join.
  return depth_of(N, m);
}

std::vector<std::uint64_t> ancestry(std::uint64_t k, std::uint64_t m) {
  std::vector<std::uint64_t> out{k};
  while (k > 1) {
    k = parent_position(k, m);
    out.push_back(k);
  }
  return out;
}

double estimate_makespan_s(std::uint64_t N, std::uint64_t m, std::uint64_t bytes,
                           double bps, double latency_s) {
  WDOC_CHECK(N >= 1 && m >= 1, "estimate_makespan_s: bad arguments");
  if (N == 1) return 0.0;
  const double send_s = static_cast<double>(bytes) * 8.0 / bps;
  const double depth = static_cast<double>(tree_depth(N, m));
  // Each level of the critical path waits for its parent to finish all m
  // sequential child sends, plus one propagation hop.
  const double fanout = static_cast<double>(std::min<std::uint64_t>(m, N - 1));
  return depth * (fanout * send_s + latency_s);
}

std::uint64_t choose_m(std::uint64_t N, std::uint64_t bytes, double bps, double latency_s,
                       std::uint64_t m_max) {
  std::uint64_t best_m = 1;
  double best = estimate_makespan_s(N, 1, bytes, bps, latency_s);
  for (std::uint64_t m = 2; m <= m_max; ++m) {
    double t = estimate_makespan_s(N, m, bytes, bps, latency_s);
    if (t < best) {
      best = t;
      best_m = m;
    }
  }
  return best_m;
}

}  // namespace wdoc::dist

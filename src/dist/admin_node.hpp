// AdminNode: the class administrator as a protocol actor on the fabric —
// the middle tier of the paper's three-tier architecture, made concrete.
//
// Stations send a join request; the administrator appends them to the
// broadcast vector in arrival order (the paper's "N networked stations join
// the database system in a linear order"), replies with their 1-based
// position, and pushes the updated vector + fan-out m to every member so
// each StationNode can re-derive its tree neighbours.
//
// Wire protocol:
//   admin.join_req   station -> admin   {}
//   admin.join_rsp   admin -> station   {position}
//   admin.vector     admin -> member    {m, vector of station ids}
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "dist/coordinator.hpp"
#include "net/fabric.hpp"
#include "net/rpc.hpp"

namespace wdoc::dist {

class AdminNode {
 public:
  // Canonical shape: Result<Snapshot> carries scrape failures (timeout when
  // the whole tree is unreachable). The legacy (Snapshot, SimTime) shape is
  // still accepted by the scrape_cluster template below.
  using SnapshotCallback = StationNode::SnapshotCallback;
  using ScrapeCallback = StationNode::ScrapeCallback;

  AdminNode(net::Fabric& fabric, StationId self, Coordinator& coordinator,
            std::uint64_t m = 2, net::RpcOptions rpc = {});

  void bind();
  [[nodiscard]] StationId id() const { return self_; }

  // Changes the announced fan-out and re-broadcasts the vector.
  [[nodiscard]] Status set_m(std::uint64_t m);

  // Re-sends the current vector to every member (e.g. after adapt()).
  [[nodiscard]] Status announce_vector();

  // Cluster-wide metrics scrape: sends obs.metrics_req to the broadcast
  // tree's root; the request fans down the m-ary tree and the per-station
  // snapshots merge on the way back up (hierarchical aggregation along the
  // same placement equations the lecture push uses). `cb` fires here with
  // the single merged snapshot — render it with obs::to_table / to_json.
  //
  // Accepts either the canonical Rpc<Snapshot> shape (Result<Snapshot>,
  // SimTime) or the legacy (Snapshot, SimTime) shape; legacy callers see an
  // empty snapshot on failure.
  template <typename Cb>
  [[nodiscard]] Status scrape_cluster(Cb&& cb) {
    if constexpr (std::is_invocable_v<Cb&, Result<obs::Snapshot>, SimTime>) {
      return scrape_cluster_rpc(std::forward<Cb>(cb));
    } else {
      return scrape_cluster_rpc(
          [legacy = std::forward<Cb>(cb)](Result<obs::Snapshot> r, SimTime t) mutable {
            legacy(r.is_ok() ? std::move(r).value() : obs::Snapshot{}, t);
          });
    }
  }
  [[nodiscard]] std::uint64_t scrapes_completed() const { return scrapes_completed_; }

  [[nodiscard]] std::uint64_t joins_served() const { return joins_served_; }

  // Per-request lifecycle counters (retries, timeouts, duplicates).
  [[nodiscard]] net::RpcStats rpc_stats() const { return rpc_.stats(); }

  static constexpr const char* kJoinReq = "admin.join_req";
  static constexpr const char* kJoinRsp = "admin.join_rsp";
  static constexpr const char* kVector = "admin.vector";

 private:
  [[nodiscard]] Status scrape_cluster_rpc(SnapshotCallback cb);
  [[nodiscard]] Status send_scrape_req(std::uint64_t req_id);
  void on_message(const net::Message& msg);
  void on_scrape_rsp(const net::Message& msg);
  [[nodiscard]] Status send_vector_to(StationId to) const;

  net::Fabric* fabric_;
  StationId self_;
  Coordinator* coordinator_;
  std::uint64_t m_;
  net::RpcOptions rpc_opts_;
  net::RpcTracker rpc_;
  std::uint64_t joins_served_ = 0;
  std::uint64_t scrapes_completed_ = 0;
  std::uint64_t next_scrape_ = 0;
};

// Client side: lets a StationNode join through the administrator instead of
// being configured by hand. On every admin.vector message the node's tree
// is refreshed; `on_joined` fires once with the assigned position.
class AdminClient {
 public:
  AdminClient(net::Fabric& fabric, StationNode& node, StationId admin);

  // Installs a handler that demultiplexes admin.* messages and forwards
  // everything else to the StationNode.
  void bind();

  [[nodiscard]] Status request_join(std::function<void(std::uint64_t position)> on_joined);
  [[nodiscard]] bool joined() const { return joined_; }

 private:
  void on_message(const net::Message& msg);

  net::Fabric* fabric_;
  StationNode* node_;
  StationId admin_;
  bool joined_ = false;
  std::function<void(std::uint64_t)> on_joined_;
};

}  // namespace wdoc::dist

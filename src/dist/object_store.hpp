// Per-station store of distribution-layer document objects.
//
// Implements the paper's object life cycle (§4):
//   instance --declare--> class            (BLOBs move to the class; the
//                                           instance keeps pointers)
//   class --instantiate--> new instance    (structure copied, BLOBs shared)
//   remote doc --reference--> local mirror (no bytes)
//   reference --materialize--> ephemeral instance (lecture buffer copy)
//   ephemeral instance --demote--> reference (post-lecture migration)
//
// BLOB bytes live in the station's BlobStore (content addressed, so class/
// instance sharing is physical); structure bytes are accounted here.
#pragma once

#include <map>
#include <optional>

#include "blob/blob_store.hpp"
#include "dist/doc_object.hpp"

namespace wdoc::dist {

struct StoredDoc {
  DocManifest manifest;
  ObjectForm form = ObjectForm::reference;
  bool ephemeral = false;
  std::uint64_t remote_retrievals = 0;  // watermark counter, requester side
  std::vector<BlobId> blob_ids;         // local BlobStore refs (materialized forms)
};

class ObjectStore {
 public:
  explicit ObjectStore(blob::BlobStore& blobs) : blobs_(&blobs) {}

  // --- materialized forms -------------------------------------------------
  // Registers a full instance; blob payloads are registered synthetically
  // (size-accounted) in the BlobStore.
  [[nodiscard]] Status put_instance(const DocManifest& manifest, bool ephemeral);
  // Mirror entry only.
  [[nodiscard]] Status put_reference(const DocManifest& manifest);

  // instance -> declares a document class of the same key. The class shares
  // the instance's BLOBs (one extra reference each).
  [[nodiscard]] Status declare_class(const std::string& doc_key);
  // class -> new instance under `new_key`. Structure is copied; BLOBs are
  // shared. Returns the new instance's manifest.
  [[nodiscard]] Result<DocManifest> instantiate(const std::string& class_key,
                                                const std::string& new_key);

  // Ephemeral instance -> reference; BLOB references drop (bytes linger as
  // reclaimable buffer until the BlobStore gc runs).
  [[nodiscard]] Status demote_to_reference(const std::string& doc_key);
  // Promote a reference to an (ephemeral) instance once payloads arrived.
  [[nodiscard]] Status materialize(const std::string& doc_key, bool ephemeral);

  [[nodiscard]] Status remove(const std::string& doc_key);

  // --- queries -----------------------------------------------------------
  [[nodiscard]] const StoredDoc* doc(const std::string& doc_key) const;
  [[nodiscard]] const StoredDoc* document_class(const std::string& doc_key) const;
  [[nodiscard]] bool has_materialized(const std::string& doc_key) const;
  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] std::size_t doc_count() const { return docs_.size(); }
  [[nodiscard]] std::size_t class_count() const { return classes_.size(); }

  // Watermark bookkeeping: bump and return the retrieval count for a doc
  // this station keeps fetching remotely.
  [[nodiscard]] std::uint64_t note_remote_retrieval(const std::string& doc_key);

  // Structure bytes of materialized docs + classes (BLOB bytes are the
  // BlobStore's stored_bytes()).
  [[nodiscard]] std::uint64_t structure_bytes() const { return structure_bytes_; }
  [[nodiscard]] std::uint64_t disk_bytes() const {
    return structure_bytes_ + blobs_->stored_bytes();
  }
  [[nodiscard]] blob::BlobStore& blobs() { return *blobs_; }

 private:
  [[nodiscard]] Status hold_blobs(const DocManifest& manifest, std::vector<BlobId>& out);
  void drop_blobs(std::vector<BlobId>& ids);

  blob::BlobStore* blobs_;
  std::map<std::string, StoredDoc> docs_;
  std::map<std::string, StoredDoc> classes_;
  std::uint64_t structure_bytes_ = 0;
};

}  // namespace wdoc::dist

// Coordinator: the paper's "class administrator" front end. It performs
// "book keeping of course registration and network information", owns the
// broadcast vector ("a linear sequence of workstation IP addresses"), and
// "maintains the sizes of m's, based on the number of workstations and the
// physical network bandwidth for different types of multimedia data" (§4).
#pragma once

#include <array>
#include <map>
#include <vector>

#include "blob/media.hpp"
#include "dist/station_node.hpp"

namespace wdoc::dist {

struct CourseRegistration {
  std::string course;      // script name / course number
  StationId station;       // where the student sits
  UserId student;
};

class Coordinator {
 public:
  // --- station registry (join order defines tree positions) --------------
  void register_station(StationId id);
  [[nodiscard]] const std::vector<StationId>& broadcast_vector() const {
    return stations_;
  }
  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }
  [[nodiscard]] std::optional<std::uint64_t> position_of(StationId id) const;

  // --- fan-out management ---------------------------------------------
  // Explicitly pin m for one media type.
  void set_m(blob::MediaType type, std::uint64_t m);
  [[nodiscard]] std::uint64_t m_for(blob::MediaType type) const;
  // Recomputes m for every media type from the current station count and a
  // measured uplink bandwidth — "adaptive to changing network conditions".
  void adapt(double uplink_bps, double latency_s);

  // Pushes the broadcast vector + per-media m to a set of nodes, using the
  // m of the given media type (a lecture is dominated by its largest media).
  void configure_tree(std::vector<StationNode*>& nodes, blob::MediaType dominant) const;

  // --- course registration ----------------------------------------------
  [[nodiscard]] Status register_course(const CourseRegistration& reg);
  [[nodiscard]] std::vector<CourseRegistration> registrations_of(
      const std::string& course) const;
  [[nodiscard]] std::vector<StationId> stations_of_course(const std::string& course) const;

 private:
  std::vector<StationId> stations_;
  std::map<StationId, std::uint64_t> positions_;
  std::array<std::uint64_t, blob::kMediaTypeCount> m_by_media_{};
  std::vector<CourseRegistration> registrations_;
};

}  // namespace wdoc::dist

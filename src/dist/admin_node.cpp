#include "dist/admin_node.hpp"

#include <span>

#include "common/log.hpp"

namespace wdoc::dist {

namespace {

Bytes encode_vector(std::uint64_t m, const std::vector<StationId>& vec) {
  Writer w;
  w.u64(m);
  w.u32(static_cast<std::uint32_t>(vec.size()));
  for (StationId s : vec) w.u64(s.value());
  return w.take();
}

Result<std::pair<std::uint64_t, std::vector<StationId>>> decode_vector(
    std::span<const std::uint8_t> b) {
  Reader r(b);
  auto m = r.u64();
  if (!m) return m.error();
  auto n = r.count(8);
  if (!n) return n.error();
  std::vector<StationId> vec;
  vec.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = r.u64();
    if (!s) return s.error();
    vec.push_back(StationId{s.value()});
  }
  return std::make_pair(m.value(), std::move(vec));
}

}  // namespace

AdminNode::AdminNode(net::Fabric& fabric, StationId self, Coordinator& coordinator,
                     std::uint64_t m, net::RpcOptions rpc)
    : fabric_(&fabric),
      self_(self),
      coordinator_(&coordinator),
      m_(m),
      rpc_opts_(rpc),
      rpc_(fabric, self) {
  Status valid = rpc_opts_.validate();
  WDOC_CHECK(valid.is_ok(), "AdminNode RpcOptions: " + valid.message());
}

void AdminNode::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

Status AdminNode::set_m(std::uint64_t m) {
  if (m < 1) return {Errc::invalid_argument, "m must be >= 1"};
  m_ = m;
  return announce_vector();
}

Status AdminNode::send_vector_to(StationId to) const {
  net::Message msg;
  msg.from = self_;
  msg.to = to;
  msg.type = kVector;
  msg.payload = encode_vector(m_, coordinator_->broadcast_vector());
  return fabric_->send(std::move(msg));
}

Status AdminNode::announce_vector() {
  for (StationId member : coordinator_->broadcast_vector()) {
    WDOC_TRY(send_vector_to(member));
  }
  return Status::ok();
}

Status AdminNode::send_scrape_req(std::uint64_t req_id) {
  // Re-read the root on every attempt: the vector may have changed (or been
  // re-rooted) between retries.
  const auto& vec = coordinator_->broadcast_vector();
  if (vec.empty()) return {Errc::unavailable, "broadcast vector is empty"};
  net::Message msg;
  msg.from = self_;
  msg.to = vec.front();  // tree root: position 1 of the broadcast vector
  msg.type = net::kMetricsRequest;
  Writer w;
  w.u64(req_id);
  msg.payload = w.take();
  return fabric_->send(std::move(msg));
}

Status AdminNode::scrape_cluster_rpc(SnapshotCallback cb) {
  const auto& vec = coordinator_->broadcast_vector();
  if (vec.empty()) {
    // Nothing has joined yet: complete immediately with an empty snapshot.
    if (cb) cb(obs::Snapshot{}, fabric_->now());
    ++scrapes_completed_;
    return Status::ok();
  }
  std::uint64_t req_id = (self_.value() << 24) | ++next_scrape_;
  // The root needs to hear from its whole subtree before answering, so the
  // attempt deadline scales with the tree depth (+2: admin hop each way).
  net::RpcOptions opts = rpc_opts_;
  opts.deadline = rpc_opts_.deadline *
                  static_cast<std::int64_t>(tree_depth(vec.size(), m_) + 2);
  rpc_.track<obs::Snapshot>(
      req_id, opts,
      [this, cb = std::move(cb)](Result<obs::Snapshot> r, SimTime t) {
        ++scrapes_completed_;
        if (cb) cb(std::move(r), t);
      },
      [this, req_id](std::uint32_t) { return send_scrape_req(req_id); });
  Status s = send_scrape_req(req_id);
  if (!s.is_ok()) {
    rpc_.cancel(req_id);
    return s;
  }
  return Status::ok();
}

void AdminNode::on_scrape_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  if (!rpc_.in_flight(req_id.value())) {
    // Response for an already-completed scrape (a retry's extra answer):
    // counted and ignored.
    rpc_.note_duplicate();
    return;
  }
  auto snap = obs::decode_snapshot(r);
  if (!snap) {
    WDOC_ERROR("admin %llu: bad scrape response: %s",
               static_cast<unsigned long long>(self_.value()),
               snap.message().c_str());
    return;
  }
  (void)rpc_.complete<obs::Snapshot>(req_id.value(), std::move(snap).value());
}

void AdminNode::on_message(const net::Message& msg) {
  if (msg.type == net::kMetricsResponse) {
    on_scrape_rsp(msg);
    return;
  }
  if (msg.type != kJoinReq) {
    WDOC_WARN("admin %llu: unexpected message type %s",
              static_cast<unsigned long long>(self_.value()), msg.type.c_str());
    return;
  }
  ++joins_served_;
  coordinator_->register_station(msg.from);
  auto position = coordinator_->position_of(msg.from);
  WDOC_CHECK(position.has_value(), "registered station has no position");

  net::Message rsp;
  rsp.from = self_;
  rsp.to = msg.from;
  rsp.type = kJoinRsp;
  Writer w;
  w.u64(*position);
  rsp.payload = w.take();
  (void)fabric_->send(std::move(rsp));

  // Every member (including the newcomer) learns the new vector.
  (void)announce_vector();
}

// --- AdminClient -------------------------------------------------------------

AdminClient::AdminClient(net::Fabric& fabric, StationNode& node, StationId admin)
    : fabric_(&fabric), node_(&node), admin_(admin) {}

void AdminClient::bind() {
  fabric_->set_handler(node_->id(),
                       [this](const net::Message& msg) { on_message(msg); });
}

Status AdminClient::request_join(std::function<void(std::uint64_t)> on_joined) {
  on_joined_ = std::move(on_joined);
  net::Message msg;
  msg.from = node_->id();
  msg.to = admin_;
  msg.type = AdminNode::kJoinReq;
  return fabric_->send(std::move(msg));
}

void AdminClient::on_message(const net::Message& msg) {
  if (msg.type == AdminNode::kJoinRsp) {
    Reader r(msg.payload);
    auto position = r.u64();
    if (!position) return;
    joined_ = true;
    if (on_joined_) {
      auto cb = std::move(on_joined_);
      on_joined_ = nullptr;
      cb(position.value());
    }
    return;
  }
  if (msg.type == AdminNode::kVector) {
    auto decoded = decode_vector(msg.payload);
    if (!decoded) {
      WDOC_ERROR("bad admin.vector payload: %s", decoded.message().c_str());
      return;
    }
    node_->set_tree(std::move(decoded.value().second), decoded.value().first);
    return;
  }
  // Everything else belongs to the distribution protocol.
  node_->handle(msg);
}

}  // namespace wdoc::dist

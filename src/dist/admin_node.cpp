#include "dist/admin_node.hpp"

#include "common/log.hpp"

namespace wdoc::dist {

namespace {

Bytes encode_vector(std::uint64_t m, const std::vector<StationId>& vec) {
  Writer w;
  w.u64(m);
  w.u32(static_cast<std::uint32_t>(vec.size()));
  for (StationId s : vec) w.u64(s.value());
  return w.take();
}

Result<std::pair<std::uint64_t, std::vector<StationId>>> decode_vector(const Bytes& b) {
  Reader r(b);
  auto m = r.u64();
  if (!m) return m.error();
  auto n = r.count(8);
  if (!n) return n.error();
  std::vector<StationId> vec;
  vec.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = r.u64();
    if (!s) return s.error();
    vec.push_back(StationId{s.value()});
  }
  return std::make_pair(m.value(), std::move(vec));
}

}  // namespace

AdminNode::AdminNode(net::Fabric& fabric, StationId self, Coordinator& coordinator,
                     std::uint64_t m)
    : fabric_(&fabric), self_(self), coordinator_(&coordinator), m_(m) {}

void AdminNode::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

Status AdminNode::set_m(std::uint64_t m) {
  if (m < 1) return {Errc::invalid_argument, "m must be >= 1"};
  m_ = m;
  return announce_vector();
}

Status AdminNode::send_vector_to(StationId to) const {
  net::Message msg;
  msg.from = self_;
  msg.to = to;
  msg.type = kVector;
  msg.payload = encode_vector(m_, coordinator_->broadcast_vector());
  return fabric_->send(std::move(msg));
}

Status AdminNode::announce_vector() {
  for (StationId member : coordinator_->broadcast_vector()) {
    WDOC_TRY(send_vector_to(member));
  }
  return Status::ok();
}

Status AdminNode::scrape_cluster(ScrapeCallback cb) {
  const auto& vec = coordinator_->broadcast_vector();
  if (vec.empty()) {
    // Nothing has joined yet: complete immediately with an empty snapshot.
    if (cb) cb(obs::Snapshot{}, fabric_->now());
    ++scrapes_completed_;
    return Status::ok();
  }
  std::uint64_t req_id = (self_.value() << 24) | ++next_scrape_;
  pending_scrapes_[req_id] = std::move(cb);
  net::Message msg;
  msg.from = self_;
  msg.to = vec.front();  // tree root: position 1 of the broadcast vector
  msg.type = net::kMetricsRequest;
  Writer w;
  w.u64(req_id);
  msg.payload = w.take();
  Status s = fabric_->send(std::move(msg));
  if (!s.is_ok()) pending_scrapes_.erase(req_id);
  return s;
}

void AdminNode::on_scrape_rsp(const net::Message& msg) {
  Reader r(msg.payload);
  auto req_id = r.u64();
  if (!req_id) return;
  auto it = pending_scrapes_.find(req_id.value());
  if (it == pending_scrapes_.end()) return;
  auto snap = obs::decode_snapshot(r);
  if (!snap) {
    WDOC_ERROR("admin %llu: bad scrape response: %s",
               static_cast<unsigned long long>(self_.value()),
               snap.message().c_str());
    return;
  }
  ScrapeCallback cb = std::move(it->second);
  pending_scrapes_.erase(it);
  ++scrapes_completed_;
  if (cb) cb(std::move(snap).value(), fabric_->now());
}

void AdminNode::on_message(const net::Message& msg) {
  if (msg.type == net::kMetricsResponse) {
    on_scrape_rsp(msg);
    return;
  }
  if (msg.type != kJoinReq) {
    WDOC_WARN("admin %llu: unexpected message type %s",
              static_cast<unsigned long long>(self_.value()), msg.type.c_str());
    return;
  }
  ++joins_served_;
  coordinator_->register_station(msg.from);
  auto position = coordinator_->position_of(msg.from);
  WDOC_CHECK(position.has_value(), "registered station has no position");

  net::Message rsp;
  rsp.from = self_;
  rsp.to = msg.from;
  rsp.type = kJoinRsp;
  Writer w;
  w.u64(*position);
  rsp.payload = w.take();
  (void)fabric_->send(std::move(rsp));

  // Every member (including the newcomer) learns the new vector.
  (void)announce_vector();
}

// --- AdminClient -------------------------------------------------------------

AdminClient::AdminClient(net::Fabric& fabric, StationNode& node, StationId admin)
    : fabric_(&fabric), node_(&node), admin_(admin) {}

void AdminClient::bind() {
  fabric_->set_handler(node_->id(),
                       [this](const net::Message& msg) { on_message(msg); });
}

Status AdminClient::request_join(std::function<void(std::uint64_t)> on_joined) {
  on_joined_ = std::move(on_joined);
  net::Message msg;
  msg.from = node_->id();
  msg.to = admin_;
  msg.type = AdminNode::kJoinReq;
  return fabric_->send(std::move(msg));
}

void AdminClient::on_message(const net::Message& msg) {
  if (msg.type == AdminNode::kJoinRsp) {
    Reader r(msg.payload);
    auto position = r.u64();
    if (!position) return;
    joined_ = true;
    if (on_joined_) {
      auto cb = std::move(on_joined_);
      on_joined_ = nullptr;
      cb(position.value());
    }
    return;
  }
  if (msg.type == AdminNode::kVector) {
    auto decoded = decode_vector(msg.payload);
    if (!decoded) {
      WDOC_ERROR("bad admin.vector payload: %s", decoded.message().c_str());
      return;
    }
    node_->set_tree(std::move(decoded.value().second), decoded.value().first);
    return;
  }
  // Everything else belongs to the distribution protocol.
  node_->handle(msg);
}

}  // namespace wdoc::dist

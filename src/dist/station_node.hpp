// StationNode: the distribution protocol actor running at every station.
//
// Implements the paper's mechanisms (§4):
//   * pre-broadcast push: lectures multicast down the full m-ary tree —
//     each node stores an ephemeral copy and forwards to its children from
//     the broadcast vector;
//   * on-demand pull: a station missing a document asks up its parent
//     chain; the response relays back down the same chain store-and-forward
//     ("a child node copies information from its parent node");
//   * watermark replication: after `watermark` remote retrievals of the
//     same document, the physical data is materialized locally;
//   * post-lecture migration: ephemeral instances demote to references,
//     releasing BLOB references ("duplicated document instances migrate to
//     document references");
//   * blob-level fetches for on-demand streaming (experiment E3).
//
// Every remote operation runs through the unified rpc lifecycle layer
// (net/rpc.hpp): per-request deadlines, capped exponential backoff with
// seeded jitter, and terminal error delivery — no callback is ever silently
// dropped. Consecutive attempt timeouts against one peer feed a failure
// detector: after StationConfig::failover_threshold of them the peer is
// declared dead, and routing falls back to the nearest live ancestor — the
// paper's placement equation ⌊(k−i−1)/m⌋+1 applied repeatedly (see
// grandparent_position in mtree.hpp). Any message later received from a
// declared-dead station resurrects it.
//
// The node is transport-agnostic: it runs identically over SimNetwork and
// ThreadTransport (Fabric).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <type_traits>
#include <vector>

#include "dist/mtree.hpp"
#include "dist/object_store.hpp"
#include "net/chunk_wire.hpp"
#include "net/fabric.hpp"
#include "net/rpc.hpp"
#include "net/swarm_wire.hpp"
#include "obs/scrape.hpp"
#include "swarm/config.hpp"
#include "swarm/scheduler.hpp"

namespace wdoc::dist {

// Knobs of the chunked cut-through push/pull paths. A push splits every
// BLOB into `chunk_bytes` chunks; an interior station relays chunk k to its
// children as soon as it verifies, holding at most `window` unacked chunks
// in flight per child (each one an rpc with a deadline and retry budget).
// Pull-side repair requests at most `repair_batch` missing indices per
// round. `enabled = false` falls back to whole-manifest store-and-forward.
struct ChunkConfig {
  bool enabled = true;
  std::uint32_t chunk_bytes = 256 * 1024;
  std::uint32_t window = 32;
  std::uint32_t repair_batch = 64;

  [[nodiscard]] Status validate() const;
};

// All of a station's protocol knobs in one validated place: replication
// behavior plus the rpc lifecycle every remote operation runs under.
struct StationConfig {
  // Remote retrievals of one document before it is replicated locally.
  // 1 replicates on first fetch; a very large value disables replication.
  // Zero is rejected by validate() — it would mean "replicate before the
  // first retrieval", which no code path can honor.
  std::uint64_t watermark = 4;
  // If true, intermediate stations relaying a pull response also keep an
  // ephemeral copy (ablation of the paper's "only reviewers duplicate").
  bool relay_cache = false;
  // Deadline / retry / backoff defaults for every rpc this node issues;
  // individual calls may override via their RpcOptions parameter.
  net::RpcOptions rpc;
  // Consecutive attempt timeouts against one peer before it is declared
  // dead and routing reparents around it.
  std::uint32_t failover_threshold = 3;
  // Floor on the assumed transfer rate when scaling a blob fetch's deadline
  // by payload size (a 25 MB blob legitimately serializes for ~40 s on a
  // 10 Mb/s campus link; a flat deadline would retransmit mid-transfer).
  double min_bandwidth_bps = 1e6;
  // Seed for the rpc tracker's deterministic backoff jitter.
  std::uint64_t rpc_seed = 0x77d0c;
  // Chunked transfer knobs (push pipelining, windowing, chunk repair).
  ChunkConfig chunk;
  // Multi-source swarm distribution (stripe trees + bitmap gossip +
  // rarest-first pull). Requires chunk.enabled; off by default.
  swarm::SwarmConfig swarm;

  [[nodiscard]] Status validate() const;
};

// Deprecated alias (kept one release): the old name before the rpc knobs
// were merged in. Remove once callers migrate.
using NodeConfig = StationConfig;

struct NodeStats {
  std::uint64_t pushes_received = 0;
  std::uint64_t pushes_forwarded = 0;
  std::uint64_t fetches_local = 0;    // resolved from local materialized copy
  std::uint64_t fetches_remote = 0;   // had to go up the chain
  std::uint64_t serves = 0;           // requests answered from local data
  std::uint64_t relays = 0;           // pull responses relayed downward
  std::uint64_t forwards_up = 0;      // pull requests forwarded to parent
  std::uint64_t replications = 0;     // watermark-triggered materializations
  std::uint64_t demotions = 0;        // instances migrated back to references
  std::uint64_t blob_serves = 0;
  std::uint64_t failed_fetches = 0;
  std::uint64_t failovers = 0;        // peers this node declared dead
  std::uint64_t resurrections = 0;    // declared-dead peers heard from again
  // Chunked transfer path:
  std::uint64_t chunks_sent = 0;         // data chunks sent (push + repair)
  std::uint64_t chunks_received = 0;     // chunks verified into partial assembly
  std::uint64_t chunk_duplicates = 0;    // already-held chunks received again
  std::uint64_t chunk_rejects = 0;       // failed digest/bounds verification
  std::uint64_t chunk_retransmits = 0;   // rpc-retry resends of a pushed chunk
  std::uint64_t chunk_repair_served = 0; // chunks served to pull requests
  std::uint64_t chunk_bytes_sent = 0;    // payload bytes across chunk sends
  // Chunk receive accounting (swarm mode makes duplicates possible):
  std::uint64_t chunk_duplicate_rx = 0;  // already-held chunks received again
  std::uint64_t chunk_wasted_bytes = 0;  // wire bytes those duplicates cost
  // Swarm path:
  std::uint64_t swarm_haves_sent = 0;        // gossip bitmaps sent
  std::uint64_t swarm_reqs_sent = 0;         // rarest-first request messages
  std::uint64_t swarm_chunks_requested = 0;  // chunk indices across those
  std::uint64_t swarm_chunks_served = 0;     // chunks served to swarm requests
  std::uint64_t swarm_relay_suppressed = 0;  // relays skipped: child already has it
};

class StationNode {
 public:
  // Canonical completion shape for every remote operation: (Result<T>,
  // completion time). See net/rpc.hpp.
  using FetchCallback = net::Rpc<DocManifest>;
  using BlobFetchCallback = net::Rpc<BlobRef>;
  using SnapshotCallback = net::Rpc<obs::Snapshot>;

  // Deprecated legacy shapes (kept one release): fetch_blob and scrape_tree
  // accept these via their template entry points and adapt. BlobCallback
  // loses the distinction between payload variants (it only sees Status);
  // ScrapeCallback receives an empty snapshot on terminal failure.
  using BlobCallback = std::function<void(Status, SimTime)>;
  using ScrapeCallback = std::function<void(obs::Snapshot, SimTime)>;

  StationNode(net::Fabric& fabric, StationId self, ObjectStore& store,
              StationConfig config = {});

  // Installs this node's message handler on the fabric.
  void bind();
  // Feeds one message to the protocol directly — for wrappers (e.g.
  // AdminClient) that own the fabric handler and demultiplex.
  void handle(const net::Message& msg) { on_message(msg); }

  // --- topology -----------------------------------------------------------
  // The class administrator's broadcast vector (stations in linear join
  // order) and the tree fan-out m. The node derives its own position.
  // The shared-ownership overload lets every node of an N-station cluster
  // alias one vector instead of holding its own copy — at N=10,000 that is
  // the difference between one 80 kB vector and 800 MB of duplicates.
  void set_tree(std::shared_ptr<const std::vector<StationId>> broadcast_vector,
                std::uint64_t m);
  void set_tree(std::vector<StationId> broadcast_vector, std::uint64_t m);
  [[nodiscard]] std::uint64_t position() const { return position_; }
  // Static tree parent from the placement equation — ignores liveness.
  [[nodiscard]] std::optional<StationId> parent_station() const;
  // Failover route: the nearest ancestor not declared dead (grandparent,
  // great-grandparent, ... when parents have failed). nullopt at the root
  // or when the whole ancestor chain is declared dead.
  [[nodiscard]] std::optional<StationId> live_parent_station() const;

  // --- failure detector ----------------------------------------------------
  [[nodiscard]] bool is_declared_dead(StationId s) const { return dead_.contains(s); }
  [[nodiscard]] const std::set<StationId>& dead_stations() const { return dead_; }
  // This station's own fabric-level liveness (false while crashed).
  [[nodiscard]] bool online() const { return fabric_->is_online(self_); }

  // --- instructor side ------------------------------------------------------
  // Root of a multicast: stores a persistent instance (if not already held)
  // and pushes down the tree. Children receive ephemeral copies. With
  // config().chunk.enabled (the default) the push is chunked and pipelined:
  // interior stations relay each verified chunk before the next arrives, so
  // makespan approaches blob_time + depth * chunk_time instead of
  // depth * blob_time. Disabled, it is the historical whole-manifest
  // store-and-forward push.
  [[nodiscard]] Status broadcast_push(const DocManifest& manifest);
  // The pre-chunking store-and-forward push, kept callable for A/B
  // comparison (bench_prebroadcast, the pipelining regression test).
  [[nodiscard]] Status broadcast_push_store_forward(const DocManifest& manifest);

  // "References to the instance are broadcasted and stored in many remote
  // stations" (§4): multicasts a reference record (manifest only, tiny wire
  // size) down the tree so every station can later pull on demand.
  [[nodiscard]] Status announce_reference(const DocManifest& manifest);

  // --- student side --------------------------------------------------------
  // Resolves a document: local hit completes synchronously; otherwise the
  // request travels up the live parent chain (or straight to `home` when no
  // tree is configured) and `cb` fires exactly once — with the manifest, or
  // with a terminal error (Errc::timeout / Errc::unreachable / the remote
  // Errc) once the retry budget is spent.
  [[nodiscard]] Status fetch(const std::string& doc_key, FetchCallback cb,
                             std::optional<net::RpcOptions> options = std::nullopt);

  // Fetches one BLOB's payload from `holder` (charged at blob size). On
  // completion the payload is registered in the local BlobStore, so a
  // repeat fetch of the same content completes locally without network
  // traffic. Accepts the canonical Rpc<BlobRef> shape or the deprecated
  // (Status, SimTime) shape.
  template <typename Cb>
  [[nodiscard]] Status fetch_blob(StationId holder, const std::string& doc_key,
                                  const BlobRef& blob, Cb&& cb,
                                  std::optional<net::RpcOptions> options = std::nullopt) {
    if constexpr (std::is_invocable_v<Cb&, Result<BlobRef>, SimTime>) {
      return fetch_blob_rpc(holder, doc_key, blob,
                            BlobFetchCallback(std::forward<Cb>(cb)), options);
    } else {
      BlobCallback legacy(std::forward<Cb>(cb));
      return fetch_blob_rpc(
          holder, doc_key, blob,
          [legacy = std::move(legacy)](Result<BlobRef> r, SimTime t) {
            legacy(r.status(), t);
          },
          options);
    }
  }
  [[nodiscard]] Status fetch_blob_rpc(StationId holder, const std::string& doc_key,
                                      const BlobRef& blob, BlobFetchCallback cb,
                                      std::optional<net::RpcOptions> options = std::nullopt);

  // Chunk-granularity anti-entropy: ensures a local reference, then pulls
  // only the chunks of the manifest's blobs this station is missing (up the
  // live parent chain, falling back to the manifest home), and materializes
  // an ephemeral instance once every blob is complete. A station whose push
  // was partially lost re-transfers kilobytes, not whole BLOBs. `cb` fires
  // exactly once: with the manifest after materialization, or with the
  // first terminal error of the round (partial progress is kept — the next
  // repair round continues from the bitmap).
  [[nodiscard]] Status repair_pull(const DocManifest& manifest, FetchCallback cb,
                                   std::optional<net::RpcOptions> options = std::nullopt);

  // Post-lecture migration: every ephemeral instance demotes to a
  // reference; returns reclaimable bytes (after the BlobStore gc).
  std::uint64_t end_lecture();

  // --- observability plane -------------------------------------------------
  // This station's own counters as a metrics snapshot, every sample tagged
  // with a `station=<id>` label. This is what a scrape response carries.
  [[nodiscard]] obs::Snapshot local_snapshot() const;

  // Initiates a hierarchical scrape of this node's subtree: the request
  // fans down the broadcast tree, each node merges its children's responses
  // into its own station-labeled snapshot on the way back up, and `cb`
  // fires once here with the subtree-wide merge. Called on the tree root
  // (directly or via AdminNode::scrape_cluster) this yields the whole
  // cluster in one snapshot. A merge waiting on a dead subtree completes
  // partially after a height-scaled deadline instead of hanging. Accepts
  // the canonical Rpc<obs::Snapshot> shape or the deprecated
  // (obs::Snapshot, SimTime) shape.
  template <typename Cb>
  [[nodiscard]] Status scrape_tree(Cb&& cb) {
    if constexpr (std::is_invocable_v<Cb&, Result<obs::Snapshot>, SimTime>) {
      return scrape_tree_rpc(SnapshotCallback(std::forward<Cb>(cb)));
    } else {
      ScrapeCallback legacy(std::forward<Cb>(cb));
      return scrape_tree_rpc(
          [legacy = std::move(legacy)](Result<obs::Snapshot> r, SimTime t) {
            legacy(r.is_ok() ? std::move(r).value() : obs::Snapshot{}, t);
          });
    }
  }
  [[nodiscard]] Status scrape_tree_rpc(SnapshotCallback cb);

  [[nodiscard]] ObjectStore& store() { return *store_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] net::RpcStats rpc_stats() const { return rpc_.stats(); }
  // Requests still awaiting a response or retry (0 once the fabric drains).
  [[nodiscard]] std::size_t pending_rpcs() const { return rpc_.pending(); }
  [[nodiscard]] StationId id() const { return self_; }
  [[nodiscard]] const StationConfig& config() const { return config_; }
  void set_watermark(std::uint64_t w) { config_.watermark = w; }

  // Chunked transfers (push) still assembling here, including fully-received
  // ones whose children have unacked chunks in flight.
  [[nodiscard]] std::size_t active_transfers() const { return transfers_.size(); }

  // When this station last materialized a pushed lecture (zero before the
  // first push completes locally). Benches compute a broadcast's makespan
  // as the max across stations, which — unlike the fabric's quiescence
  // time — excludes the swarm gossip tail after the last delivery.
  [[nodiscard]] SimTime last_delivery() const { return last_delivery_; }

  // Message type tags (public for tests). Chunk tags live in net/chunk_wire.hpp.
  static constexpr const char* kPush = "dist.push";
  static constexpr const char* kRefAnnounce = "dist.ref";
  static constexpr const char* kFetchReq = "dist.fetch_req";
  static constexpr const char* kFetchRsp = "dist.fetch_rsp";
  static constexpr const char* kFetchErr = "dist.fetch_err";
  static constexpr const char* kBlobReq = "dist.blob_req";
  static constexpr const char* kBlobRsp = "dist.blob_rsp";
  static constexpr const char* kChunkBegin = net::kChunkBegin;
  static constexpr const char* kChunkData = net::kChunkData;
  static constexpr const char* kChunkAck = net::kChunkAck;
  static constexpr const char* kChunkReq = net::kChunkReq;
  static constexpr const char* kChunkRsp = net::kChunkRsp;
  static constexpr const char* kSwarmBegin = net::kSwarmBegin;
  static constexpr const char* kSwarmHave = net::kSwarmHave;
  static constexpr const char* kSwarmReq = net::kSwarmReq;

 private:
  void on_message(const net::Message& msg);
  void on_push(const net::Message& msg);
  void on_ref_announce(const net::Message& msg);
  void on_fetch_req(const net::Message& msg);
  void on_fetch_rsp(const net::Message& msg);
  void on_fetch_err(const net::Message& msg);
  void on_blob_req(const net::Message& msg);
  void on_blob_rsp(const net::Message& msg);
  void on_chunk_begin(const net::Message& msg);
  void on_chunk_data(const net::Message& msg);
  void on_chunk_ack(const net::Message& msg);
  void on_chunk_req(const net::Message& msg);
  void on_chunk_rsp(const net::Message& msg);
  void on_scrape_req(const net::Message& msg);
  void on_scrape_rsp(const net::Message& msg);

  // One (re)send of an in-flight pull: recomputes the route each attempt,
  // so retries travel the repaired chain after a reparent.
  [[nodiscard]] Status send_fetch_req(std::uint64_t req_id, const std::string& doc_key);
  [[nodiscard]] Status send_blob_req(std::uint64_t req_id, StationId holder,
                                     const std::string& doc_key, const BlobRef& blob);
  [[nodiscard]] Status send_push(StationId to, const DocManifest& manifest,
                                 obs::TraceContext trace = {});

  // Failure detector: consecutive attempt timeouts per routed-to peer.
  void note_attempt_timeout(StationId target);
  void declare_dead(StationId target);
  void note_alive(StationId from);

  // --- chunked push ---------------------------------------------------------
  // Per-child relay state of one transfer: chunks not yet sent (in arrival
  // order — the cut-through queue) and the bounded in-flight window, each
  // slot an rpc waiting on its ChunkAck.
  struct ChildCursor {
    StationId child;
    std::deque<std::uint64_t> pending;                 // (blob_ordinal<<32)|index
    std::map<std::uint64_t, std::uint64_t> in_flight;  // chunk key -> rpc req_id
    // Swarm mode: which stripe tree this cursor feeds (only that tree's
    // chunks are relayed through it) and the child's 1-based position,
    // for bitmap-based relay suppression. tree is 0 and child_pos unset
    // on the single-tree pipeline.
    std::uint32_t tree = 0;
    std::uint64_t child_pos = 0;
  };
  // One queued swarm-mode chunk send: a stripe relay to a tree child
  // (serve=false) or a requested chunk to a pulling peer (serve=true).
  // peer_pos is the receiver's 1-based tree position, for last-moment
  // bitmap suppression.
  struct SwarmSend {
    StationId to;
    std::uint64_t peer_pos = 0;
    std::uint64_t key = 0;  // (blob_ordinal<<32)|index
    bool serve = false;
  };
  struct Transfer {
    DocManifest manifest;
    std::uint32_t chunk_bytes = 0;
    std::uint64_t total_chunks = 0;
    bool delivered = false;  // local instance materialized
    std::vector<ChildCursor> children;
    std::uint64_t span = 0;  // trace span covering this hop of the multicast
    // End-to-end trace of the whole multicast: derived deterministically
    // from the transfer id at the root, inherited from msg.trace.trace_id
    // at every hop below it (together with the head-sample verdict).
    std::uint64_t trace_id = 0;
    bool trace_sampled = false;
    // Swarm mode (DESIGN.md §4f):
    bool swarm = false;
    bool gossip_done = false;     // gossip loop finished; transfer may retire
    std::uint32_t stripe_trees = 1;
    // Global chunk index base per blob ordinal (size blobs+1): chunk g of
    // the transfer is blob upper_bound(g)-1, index g - prefix[ordinal].
    std::vector<std::uint32_t> chunk_prefix;
    std::unique_ptr<swarm::SwarmScheduler> sched;
    // Stripe-ancestor adoption (the swarm analogue of tree failover): the
    // closest ancestor per stripe tree we currently expect gossip from.
    // While it stays silent past stall_timeout we walk one level further
    // up and adopt that ancestor as a gossip peer — a shallow ancestor
    // sees the chunk frontier seconds before the orphaned subtree does,
    // and its uplink has the dead child's relay slots to spare.
    std::vector<std::uint64_t> acting_parent;  // per tree; 0 = walked out
    std::vector<SimTime> acting_since;         // per tree: last walk time
    net::Fabric::TimerHandle gossip_timer;
    std::uint32_t gossip_rounds = 0;
    std::uint32_t idle_rounds = 0;
    std::uint64_t last_state_sum = 0;
    // Any SwarmHave/SwarmReq received since the last gossip tick. An
    // incomplete neighbor that is still *alive* keeps gossiping even when
    // its bitmap is frozen (it may be waiting on our serves) — hearing it
    // must hold this transfer open, or we retire while it still needs us.
    bool gossip_heard = false;
    // Paced swarm send queues: sends drain one chunk per uplink
    // chunk-time, so the fabric queue never grows beyond a chunk or two
    // and small control traffic (begins, gossip) is never stuck behind
    // seconds of bulk data. Stripe relays (swarm_queue) take priority over
    // request serves (swarm_serve_queue) — a relay feeds a whole subtree —
    // but after serve_stride consecutive relays one serve is interleaved,
    // so crash recovery drains steadily instead of waiting for the entire
    // relay backlog (see SwarmConfig::serve_stride).
    std::deque<SwarmSend> swarm_queue;
    std::deque<SwarmSend> swarm_serve_queue;
    std::uint32_t relays_since_serve = 0;
    net::Fabric::TimerHandle pace_timer;
    bool pacing = false;
  };

  [[nodiscard]] Status start_chunked_push(const DocManifest& manifest);
  // Forwards the transfer's begin to this node's tree children and creates
  // their cursors; enqueues every locally-held chunk (cut-through for the
  // rest happens as chunks verify in on_chunk_data).
  void open_transfer_children(std::uint64_t transfer_id, Transfer& t);
  void enqueue_held_chunks(Transfer& t, ChildCursor& cursor);
  void pump_cursor(std::uint64_t transfer_id, ChildCursor& cursor);
  [[nodiscard]] Status send_chunk(std::uint64_t transfer_id, const Transfer& t,
                                  StationId child, std::uint64_t key,
                                  std::uint64_t req_id, bool retransmit);
  [[nodiscard]] bool transfer_blobs_complete(const Transfer& t) const;
  void deliver_transfer(std::uint64_t transfer_id);
  void maybe_retire_transfer(std::uint64_t transfer_id);

  // --- swarm mode (multi-source distribution, DESIGN.md §4f) ---------------
  [[nodiscard]] Status start_swarm_push(const DocManifest& manifest);
  // Builds the transfer's swarm state: chunk prefix table, scheduler with
  // stripe parents and gossip neighbors, self bitmap seeded from the blob
  // store, and the first gossip tick.
  void init_swarm(std::uint64_t transfer_id, Transfer& t, std::uint32_t trees);
  // Sends SwarmBegin to every stripe-tree child and creates one cursor per
  // (child, tree); each cursor relays only its tree's chunks.
  void open_swarm_children(std::uint64_t transfer_id, Transfer& t);
  // Re-announce a transfer to a child that has never gossiped back — its
  // SwarmBegin may have been lost on every stripe tree (begins are
  // idempotent, so over-sending is safe).
  void resend_swarm_begin(std::uint64_t transfer_id, const Transfer& t,
                          const ChildCursor& c);
  void enqueue_swarm_send(std::uint64_t transfer_id, Transfer& t, SwarmSend entry);
  void swarm_pace_tick(std::uint64_t transfer_id);
  [[nodiscard]] SimTime swarm_pace_interval(const Transfer& t) const;
  void schedule_swarm_tick(std::uint64_t transfer_id);
  // One gossip round: progress/idle bookkeeping, termination check, then
  // SwarmHave to every known peer and SwarmReq per scheduler plan.
  void on_swarm_tick(std::uint64_t transfer_id);
  void on_swarm_begin(const net::Message& msg);
  void on_swarm_have(const net::Message& msg);
  void on_swarm_req(const net::Message& msg);
  // Maps a sender-claimed position to its station id, validating it against
  // the broadcast vector and the message's actual origin.
  [[nodiscard]] bool position_matches(std::uint64_t position, StationId from) const;

  // --- chunked pull / repair ------------------------------------------------
  // One blob's pull loop: request up to repair_batch missing chunks per
  // round from `holder` (or the live parent chain / `home` when unset),
  // repeat while rounds make progress, finish via `done`.
  struct BlobPull {
    std::string doc_key;
    BlobRef blob;
    std::optional<StationId> holder;
    StationId home;
    std::uint32_t chunk_bytes = 0;
    net::RpcOptions base;
    std::function<void(Status, SimTime)> done;
  };
  [[nodiscard]] Status pull_blob_chunks(BlobPull pull);
  [[nodiscard]] Status start_pull_round(std::shared_ptr<BlobPull> pull,
                                        std::size_t missing_before);
  [[nodiscard]] Status send_chunk_req(std::uint64_t req_id, const BlobPull& pull);

  // Starts pending-scrape state for `req_id` and fans the request to this
  // node's tree children; completes immediately at a leaf.
  [[nodiscard]] Status start_scrape(std::uint64_t req_id,
                                    std::optional<StationId> reply_to,
                                    SnapshotCallback cb);
  void finish_scrape_if_done(std::uint64_t req_id);
  void on_scrape_deadline(std::uint64_t req_id);
  [[nodiscard]] Status send_scrape_rsp(StationId to, std::uint64_t req_id,
                                       const obs::Snapshot& snap);

  net::Fabric* fabric_;
  StationId self_;
  ObjectStore* store_;
  StationConfig config_;
  NodeStats stats_;
  net::RpcTracker rpc_;

  // Shared with every other node of the cluster (see set_tree); read-only
  // through tree_order(). Never null — starts as an empty vector.
  std::shared_ptr<const std::vector<StationId>> broadcast_vector_ =
      std::make_shared<const std::vector<StationId>>();
  std::uint64_t m_ = 2;
  std::uint64_t position_ = 0;  // 1-based; 0 = not in tree

  [[nodiscard]] const std::vector<StationId>& tree_order() const {
    return *broadcast_vector_;
  }

  // Failure detector state: consecutive timeouts per peer, peers declared
  // dead, and the peer each in-flight rpc last routed to.
  std::map<StationId, std::uint32_t> suspect_;
  std::set<StationId> dead_;
  std::map<std::uint64_t, StationId> rpc_target_;

  // Chunked push transfers in flight (keyed by transfer id).
  std::map<std::uint64_t, Transfer> transfers_;

  // Hierarchical scrape in flight: requesters waiting on the merge (a retry
  // of an in-flight req_id registers as an extra waiter, never a second
  // fan-out), children yet to answer, the merged snapshot so far, and the
  // merge's own deadline.
  struct PendingScrape {
    std::vector<StationId> reply_to;
    SnapshotCallback cb;
    std::size_t outstanding = 0;
    obs::Snapshot acc;
    net::Fabric::TimerHandle timer;
  };
  std::map<std::uint64_t, PendingScrape> pending_scrapes_;
  // Bounded cache of recently-completed merges, so a retry that crossed the
  // original response on the wire gets the cached answer instead of
  // triggering a whole new subtree fan-out.
  std::deque<std::pair<std::uint64_t, obs::Snapshot>> recent_merges_;
  static constexpr std::size_t kRecentMerges = 8;

  SimTime last_delivery_{};
  std::uint64_t next_req_ = 0;
};

}  // namespace wdoc::dist

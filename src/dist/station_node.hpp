// StationNode: the distribution protocol actor running at every station.
//
// Implements the paper's mechanisms (§4):
//   * pre-broadcast push: lectures multicast down the full m-ary tree —
//     each node stores an ephemeral copy and forwards to its children from
//     the broadcast vector;
//   * on-demand pull: a station missing a document asks up its parent
//     chain; the response relays back down the same chain store-and-forward
//     ("a child node copies information from its parent node");
//   * watermark replication: after `watermark` remote retrievals of the
//     same document, the physical data is materialized locally;
//   * post-lecture migration: ephemeral instances demote to references,
//     releasing BLOB references ("duplicated document instances migrate to
//     document references");
//   * blob-level fetches for on-demand streaming (experiment E3).
//
// The node is transport-agnostic: it runs identically over SimNetwork and
// ThreadTransport (Fabric).
#pragma once

#include <functional>
#include <map>

#include "dist/mtree.hpp"
#include "dist/object_store.hpp"
#include "net/fabric.hpp"
#include "obs/scrape.hpp"

namespace wdoc::dist {

struct NodeConfig {
  // Remote retrievals of one document before it is replicated locally.
  // 1 replicates on first fetch; a very large value disables replication.
  std::uint64_t watermark = 4;
  // If true, intermediate stations relaying a pull response also keep an
  // ephemeral copy (ablation of the paper's "only reviewers duplicate").
  bool relay_cache = false;
};

struct NodeStats {
  std::uint64_t pushes_received = 0;
  std::uint64_t pushes_forwarded = 0;
  std::uint64_t fetches_local = 0;    // resolved from local materialized copy
  std::uint64_t fetches_remote = 0;   // had to go up the chain
  std::uint64_t serves = 0;           // requests answered from local data
  std::uint64_t relays = 0;           // pull responses relayed downward
  std::uint64_t forwards_up = 0;      // pull requests forwarded to parent
  std::uint64_t replications = 0;     // watermark-triggered materializations
  std::uint64_t demotions = 0;        // instances migrated back to references
  std::uint64_t blob_serves = 0;
  std::uint64_t failed_fetches = 0;
};

class StationNode {
 public:
  using FetchCallback = std::function<void(Result<DocManifest>, SimTime)>;
  using BlobCallback = std::function<void(Status, SimTime)>;
  using ScrapeCallback = std::function<void(obs::Snapshot, SimTime)>;

  StationNode(net::Fabric& fabric, StationId self, ObjectStore& store,
              NodeConfig config = {});

  // Installs this node's message handler on the fabric.
  void bind();
  // Feeds one message to the protocol directly — for wrappers (e.g.
  // AdminClient) that own the fabric handler and demultiplex.
  void handle(const net::Message& msg) { on_message(msg); }

  // --- topology -----------------------------------------------------------
  // The class administrator's broadcast vector (stations in linear join
  // order) and the tree fan-out m. The node derives its own position.
  void set_tree(std::vector<StationId> broadcast_vector, std::uint64_t m);
  [[nodiscard]] std::uint64_t position() const { return position_; }
  [[nodiscard]] std::optional<StationId> parent_station() const;

  // --- instructor side ------------------------------------------------------
  // Root of a multicast: stores a persistent instance (if not already held)
  // and pushes down the tree. Children receive ephemeral copies.
  [[nodiscard]] Status broadcast_push(const DocManifest& manifest);

  // "References to the instance are broadcasted and stored in many remote
  // stations" (§4): multicasts a reference record (manifest only, tiny wire
  // size) down the tree so every station can later pull on demand.
  [[nodiscard]] Status announce_reference(const DocManifest& manifest);

  // --- student side --------------------------------------------------------
  // Resolves a document: local hit completes synchronously; otherwise the
  // request travels up the parent chain (or straight to `home` when no tree
  // is configured) and the callback fires on response.
  [[nodiscard]] Status fetch(const std::string& doc_key, FetchCallback cb);
  // Fetches one BLOB's payload from `holder` (charged at blob size). On
  // completion the payload is registered in the local BlobStore, so a
  // repeat fetch of the same content completes locally without network
  // traffic.
  [[nodiscard]] Status fetch_blob(StationId holder, const std::string& doc_key,
                                  const BlobRef& blob, BlobCallback cb);

  // Post-lecture migration: every ephemeral instance demotes to a
  // reference; returns reclaimable bytes (after the BlobStore gc).
  std::uint64_t end_lecture();

  // --- observability plane -------------------------------------------------
  // This station's own counters as a metrics snapshot, every sample tagged
  // with a `station=<id>` label. This is what a scrape response carries.
  [[nodiscard]] obs::Snapshot local_snapshot() const;

  // Initiates a hierarchical scrape of this node's subtree: the request
  // fans down the broadcast tree, each node merges its children's responses
  // into its own station-labeled snapshot on the way back up, and `cb`
  // fires once here with the subtree-wide merge. Called on the tree root
  // (directly or via AdminNode::scrape_cluster) this yields the whole
  // cluster in one snapshot.
  [[nodiscard]] Status scrape_tree(ScrapeCallback cb);

  [[nodiscard]] ObjectStore& store() { return *store_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] StationId id() const { return self_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  void set_watermark(std::uint64_t w) { config_.watermark = w; }

  // Message type tags (public for tests).
  static constexpr const char* kPush = "dist.push";
  static constexpr const char* kRefAnnounce = "dist.ref";
  static constexpr const char* kFetchReq = "dist.fetch_req";
  static constexpr const char* kFetchRsp = "dist.fetch_rsp";
  static constexpr const char* kFetchErr = "dist.fetch_err";
  static constexpr const char* kBlobReq = "dist.blob_req";
  static constexpr const char* kBlobRsp = "dist.blob_rsp";

 private:
  void on_message(const net::Message& msg);
  void on_push(const net::Message& msg);
  void on_ref_announce(const net::Message& msg);
  void on_fetch_req(const net::Message& msg);
  void on_fetch_rsp(const net::Message& msg);
  void on_fetch_err(const net::Message& msg);
  void on_blob_req(const net::Message& msg);
  void on_blob_rsp(const net::Message& msg);
  void on_scrape_req(const net::Message& msg);
  void on_scrape_rsp(const net::Message& msg);

  void complete_fetch(std::uint64_t req_id, Result<DocManifest> result);
  [[nodiscard]] Status send_push(StationId to, const DocManifest& manifest,
                                 std::uint64_t trace_parent = 0);
  // Starts pending-scrape state for `req_id` and fans the request to this
  // node's tree children; completes immediately at a leaf.
  [[nodiscard]] Status start_scrape(std::uint64_t req_id,
                                    std::optional<StationId> reply_to,
                                    ScrapeCallback cb);
  void finish_scrape_if_done(std::uint64_t req_id);

  net::Fabric* fabric_;
  StationId self_;
  ObjectStore* store_;
  NodeConfig config_;
  NodeStats stats_;

  std::vector<StationId> broadcast_vector_;
  std::uint64_t m_ = 2;
  std::uint64_t position_ = 0;  // 1-based; 0 = not in tree

  std::map<std::uint64_t, FetchCallback> pending_fetches_;
  struct PendingBlob {
    BlobRef blob;
    BlobCallback cb;
  };
  std::map<std::uint64_t, PendingBlob> pending_blobs_;
  // Hierarchical scrape in flight: children yet to answer, the merged
  // snapshot so far, and where the final merge goes (up the tree, or a
  // local callback at the initiator).
  struct PendingScrape {
    std::optional<StationId> reply_to;
    ScrapeCallback cb;
    std::size_t outstanding = 0;
    obs::Snapshot acc;
  };
  std::map<std::uint64_t, PendingScrape> pending_scrapes_;
  std::uint64_t next_req_ = 0;
};

}  // namespace wdoc::dist

#include "dist/doc_object.hpp"

namespace wdoc::dist {

const char* object_form_name(ObjectForm f) {
  switch (f) {
    case ObjectForm::document_class: return "class";
    case ObjectForm::instance: return "instance";
    case ObjectForm::reference: return "reference";
  }
  return "?";
}

void DocManifest::serialize(Writer& w) const {
  w.str(doc_key);
  w.u64(structure_bytes);
  w.u64(home.value());
  w.u32(static_cast<std::uint32_t>(blobs.size()));
  for (const BlobRef& b : blobs) {
    w.u64(b.digest.lo);
    w.u64(b.digest.hi);
    w.u64(b.size);
    w.u8(static_cast<std::uint8_t>(b.type));
    w.boolean(b.playout_ms.has_value());
    if (b.playout_ms) w.i64(*b.playout_ms);
  }
}

Result<DocManifest> DocManifest::deserialize(Reader& r) {
  DocManifest m;
  auto key = r.str();
  if (!key) return key.error();
  m.doc_key = std::move(key).value();
  auto sb = r.u64();
  if (!sb) return sb.error();
  m.structure_bytes = sb.value();
  auto home = r.u64();
  if (!home) return home.error();
  m.home = StationId{home.value()};
  auto n = r.count(26);  // min encoded BlobRef size
  if (!n) return n.error();
  m.blobs.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    BlobRef b;
    auto lo = r.u64();
    auto hi = r.u64();
    auto size = r.u64();
    auto type = r.u8();
    if (!lo || !hi || !size || !type) return Error{Errc::corrupt, "truncated blob ref"};
    b.digest = Digest128{lo.value(), hi.value()};
    b.size = size.value();
    b.type = static_cast<blob::MediaType>(type.value());
    auto has_playout = r.boolean();
    if (!has_playout) return has_playout.error();
    if (has_playout.value()) {
      auto p = r.i64();
      if (!p) return p.error();
      b.playout_ms = p.value();
    }
    m.blobs.push_back(b);
  }
  return m;
}

}  // namespace wdoc::dist

// The paper's full m-ary distribution tree (§4).
//
// N stations join the database system in a linear order and are arranged in
// a full m-ary tree, breadth-first. The paper gives two placement equations
// (positions are 1-based):
//
//   child(n, i)  = m(n-1) + i + 1          for the i-th child, 1 <= i <= m
//   parent(k)    = (k-i-1)/m + 1,  where i = (k-1) mod m, except i = m when
//                  the mod is zero
//
// These are pure functions of position; tests verify the inverse property
// exhaustively ("proved by mathematical induction ... also implemented in
// our system").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hpp"

namespace wdoc::dist {

// Position of the i-th child (1-based) of the station at position n.
// Requires m >= 1, n >= 1, 1 <= i <= m. The result may exceed N; callers
// clip against the station count.
[[nodiscard]] constexpr std::uint64_t child_position(std::uint64_t n, std::uint64_t i,
                                                     std::uint64_t m) {
  return m * (n - 1) + i + 1;
}

// Position of the unique parent of the station at position k (k >= 2).
[[nodiscard]] constexpr std::uint64_t parent_position(std::uint64_t k, std::uint64_t m) {
  std::uint64_t i = (k - 1) % m;
  if (i == 0) i = m;
  return (k - i - 1) / m + 1;
}

// Failover attachment point (tree repair under station death): when the
// parent of position k is declared dead, the orphan reattaches to its
// grandparent — the paper's parent equation ⌊(k−i−1)/m⌋+1 applied twice
// (clamped at the root). Applied repeatedly, a chain of dead ancestors
// resolves to the nearest live one; StationNode::live_parent_station walks
// exactly this chain.
[[nodiscard]] constexpr std::uint64_t grandparent_position(std::uint64_t k,
                                                           std::uint64_t m) {
  std::uint64_t p = k <= 1 ? 1 : parent_position(k, m);
  return p <= 1 ? 1 : parent_position(p, m);
}

// Height of the subtree rooted at position k in a breadth-first-filled
// m-ary tree of N stations (0 for a leaf). Used to scale hierarchical
// merge deadlines by how far below k the slowest answer can originate.
[[nodiscard]] std::uint64_t subtree_height(std::uint64_t k, std::uint64_t m,
                                           std::uint64_t N);

// All existing children of position n given N stations.
[[nodiscard]] std::vector<std::uint64_t> children_of(std::uint64_t n, std::uint64_t m,
                                                     std::uint64_t N);

// Depth of position k (root = 0).
[[nodiscard]] std::uint64_t depth_of(std::uint64_t k, std::uint64_t m);

// Depth of the whole tree over N stations (depth of position N).
[[nodiscard]] std::uint64_t tree_depth(std::uint64_t N, std::uint64_t m);

// Chain of positions from k up to the root, inclusive: {k, parent, ..., 1}.
[[nodiscard]] std::vector<std::uint64_t> ancestry(std::uint64_t k, std::uint64_t m);

// Estimated broadcast makespan for store-and-forward multicast of `bytes`
// down an m-ary tree of N stations, each node sending to its children
// sequentially over a `bps` uplink with one-way `latency_s` per hop:
//   makespan ~ depth * latency + (sum over the critical path of sequential
//   child sends) ~ tree_depth * (m * bytes*8/bps) + tree_depth * latency.
// Used by the coordinator's adaptive choice of m (experiment E10).
[[nodiscard]] double estimate_makespan_s(std::uint64_t N, std::uint64_t m,
                                         std::uint64_t bytes, double bps,
                                         double latency_s);

// argmin over m in [1, m_max] of estimate_makespan_s. N >= 1.
[[nodiscard]] std::uint64_t choose_m(std::uint64_t N, std::uint64_t bytes, double bps,
                                     double latency_s, std::uint64_t m_max = 16);

}  // namespace wdoc::dist

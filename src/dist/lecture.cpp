#include "dist/lecture.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace wdoc::dist {

const char* lecture_state_name(LectureState s) {
  switch (s) {
    case LectureState::pending: return "pending";
    case LectureState::live: return "live";
    case LectureState::ended: return "ended";
  }
  return "?";
}

LectureSession::LectureSession(LectureId id, DocManifest manifest,
                               StationNode& instructor,
                               std::vector<StationNode*> audience)
    : id_(id),
      manifest_(std::move(manifest)),
      instructor_(&instructor),
      audience_(std::move(audience)) {}

Status LectureSession::begin() {
  if (state_ == LectureState::ended) {
    return {Errc::conflict, "lecture already ended"};
  }
  WDOC_TRY(instructor_->broadcast_push(manifest_));
  state_ = LectureState::live;
  return Status::ok();
}

std::vector<StationId> LectureSession::missing() const {
  std::vector<StationId> out;
  for (StationNode* node : audience_) {
    if (!node->store().has_materialized(manifest_.doc_key)) {
      out.push_back(node->id());
    }
  }
  return out;
}

Result<std::size_t> LectureSession::repair() {
  if (state_ != LectureState::live) {
    return Error{Errc::conflict, "repair() requires a live lecture"};
  }
  std::size_t issued = 0;
  const std::string& key = manifest_.doc_key;
  for (StationNode* node : audience_) {
    if (node->store().has_materialized(key)) continue;
    // A crashed station can't pull; it will be repaired after it restarts
    // (the next repair pass sees it online again).
    if (!node->online()) continue;
    // Seed a reference (with the home) if the push never arrived at all, so
    // the pull has routing information even without a tree.
    if (node->store().doc(key) == nullptr) {
      WDOC_TRY(node->store().put_reference(manifest_));
    }
    Status pulled = Status::ok();
    if (node->config().chunk.enabled && !manifest_.blobs.empty()) {
      // Chunk-granularity anti-entropy: pull only the missing chunks of the
      // missing blobs; repair_pull materializes on completion itself.
      pulled = node->repair_pull(manifest_, [](Result<DocManifest>, SimTime) {});
    } else {
      // Force materialization on arrival regardless of the watermark: the
      // lecture is live, the student needs the physical data now.
      StationNode* target = node;
      std::string doc_key = key;
      pulled = node->fetch(key, [target, doc_key](Result<DocManifest> r, SimTime) {
        if (r.is_ok()) {
          (void)target->store().materialize(doc_key, /*ephemeral=*/true);
        }
      });
    }
    // Unroutable right now (e.g. its whole ancestor chain is suspected
    // dead): skip this round, the next repair pass retries.
    if (!pulled.is_ok()) continue;
    ++issued;
  }
  repairs_issued_ += issued;
  obs::MetricsRegistry::global().counter("dist.anti_entropy_repairs").inc(issued);
  if (issued > 0) {
    obs::FlightRecorder::global().record(
        obs::FlightKind::repair,
        std::to_string(issued) + " repair pull(s) for " + key,
        instructor_->id().value());
  }
  return issued;
}

std::uint64_t LectureSession::end() {
  if (state_ == LectureState::ended) return 0;
  state_ = LectureState::ended;
  std::uint64_t reclaimed = 0;
  for (StationNode* node : audience_) {
    reclaimed += node->end_lecture();
  }
  return reclaimed;
}

}  // namespace wdoc::dist

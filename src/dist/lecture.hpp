// LectureSession: the class administrator's orchestration of one lecture's
// life cycle over the distribution layer —
//   begin()   pre-broadcasts the lecture down the m-ary tree;
//   missing() audits which audience stations hold it (the broadcast may
//             have crossed lossy links);
//   repair()  anti-entropy: every missing station pulls up its parent
//             chain, so a dropped push degrades to on-demand rather than
//             failing the lecture;
//   end()     post-lecture migration at every audience station
//             ("duplicated document instances migrate to document
//             references"), returning the buffer bytes reclaimed.
#pragma once

#include "dist/station_node.hpp"

namespace wdoc::dist {

enum class LectureState : std::uint8_t { pending = 0, live = 1, ended = 2 };

[[nodiscard]] const char* lecture_state_name(LectureState s);

class LectureSession {
 public:
  // `instructor` must be the tree root for push to reach everyone;
  // `audience` are the stations expected to hold the lecture while live.
  LectureSession(LectureId id, DocManifest manifest, StationNode& instructor,
                 std::vector<StationNode*> audience);

  [[nodiscard]] LectureId id() const { return id_; }
  [[nodiscard]] const DocManifest& manifest() const { return manifest_; }
  [[nodiscard]] LectureState state() const { return state_; }

  // Pre-broadcast. Idempotent while pending.
  [[nodiscard]] Status begin();

  // Audience stations without a materialized copy right now.
  [[nodiscard]] std::vector<StationId> missing() const;
  [[nodiscard]] bool fully_distributed() const { return missing().empty(); }

  // Issues a pull from every missing station; completion is visible via
  // missing() once the fabric settles. Returns how many pulls were issued.
  [[nodiscard]] Result<std::size_t> repair();

  // Ends the lecture: migration at every audience station. Returns bytes
  // reclaimed across the audience. Idempotent.
  [[nodiscard]] std::uint64_t end();

  [[nodiscard]] std::size_t audience_size() const { return audience_.size(); }
  [[nodiscard]] std::uint64_t repairs_issued() const { return repairs_issued_; }

 private:
  LectureId id_;
  DocManifest manifest_;
  StationNode* instructor_;
  std::vector<StationNode*> audience_;
  LectureState state_ = LectureState::pending;
  std::uint64_t repairs_issued_ = 0;
};

}  // namespace wdoc::dist

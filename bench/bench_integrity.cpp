// E8 — integrity_propagation: cascading update alerts (claim C7).
//
// Course graphs of growing fan-out/depth are generated into a repository;
// the diagram is built and a script update is propagated. Metrics: alerts
// raised per update and propagation cost. Paper shape: alert count equals
// the size of the dependent subtree (implementations + files + resources +
// test chain) and grows linearly with fan-out; BFS keeps cost linear in
// edges even with shared (diamond) resources.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "integrity/build.hpp"
#include "workload/corpus.hpp"

using namespace wdoc;

namespace {

struct Graph {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<blob::BlobStore> blobs;
  std::unique_ptr<docmodel::Repository> repo;
  integrity::IntegrityDiagram diagram;
  std::string first_script;
};

Graph build_graph(std::size_t impls, std::size_t files_per_impl) {
  Graph g;
  g.db = storage::Database::in_memory();
  g.blobs = std::make_unique<blob::BlobStore>();
  g.repo = std::make_unique<docmodel::Repository>(*g.db, *g.blobs);
  docmodel::install_schemas(*g.db).expect("schemas");

  workload::CorpusConfig cfg;
  cfg.courses = 1;
  cfg.impls_per_course = impls;
  cfg.html_per_impl = files_per_impl;
  cfg.programs_per_impl = files_per_impl / 2;
  cfg.resources_per_impl = files_per_impl / 2;
  cfg.unique_resources = 16;
  cfg.seed = 3;
  auto corpus = workload::generate_corpus(*g.repo, cfg).expect("corpus");
  g.first_script = corpus.courses[0].script_name;
  g.diagram = integrity::build_diagram(*g.repo).expect("diagram");
  return g;
}

void BM_BuildDiagram(benchmark::State& state) {
  auto impls = static_cast<std::size_t>(state.range(0));
  Graph g = build_graph(impls, 8);
  for (auto _ : state) {
    auto diagram = integrity::build_diagram(*g.repo).expect("diagram");
    benchmark::DoNotOptimize(diagram);
  }
  state.counters["objects"] = static_cast<double>(g.diagram.object_count());
}
BENCHMARK(BM_BuildDiagram)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_OnUpdate(benchmark::State& state) {
  auto impls = static_cast<std::size_t>(state.range(0));
  Graph g = build_graph(impls, 8);
  integrity::SciRef script{integrity::SciKind::script, g.first_script};
  std::size_t alerts = 0;
  for (auto _ : state) {
    auto a = g.diagram.on_update(script);
    alerts = a.size();
    benchmark::DoNotOptimize(a);
  }
  state.counters["alerts"] = static_cast<double>(alerts);
}
BENCHMARK(BM_OnUpdate)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E8: referential-integrity alert propagation ===\n");
  std::printf("one script, varying implementation fan-out, 8 files per impl\n\n");
  std::printf("%12s %10s %8s %14s %16s\n", "impls", "objects", "links",
              "alerts/update", "depth-1 alerts");
  for (std::size_t impls : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Graph g = build_graph(impls, 8);
    auto alerts = g.diagram.on_update({integrity::SciKind::script, g.first_script});
    std::size_t direct = 0;
    for (const auto& a : alerts) {
      if (a.depth == 1) ++direct;
    }
    std::printf("%12zu %10zu %8zu %14zu %16zu\n", impls, g.diagram.object_count(),
                g.diagram.link_count(), alerts.size(), direct);
  }

  std::printf("\nmultiplicity audit over the generated graph ('+' links):\n");
  {
    Graph g = build_graph(4, 8);
    auto violations = g.diagram.check_multiplicities(nullptr);
    std::printf("  %zu violation(s) in a well-formed corpus\n", violations.size());
  }
  std::printf("\nshape check: alerts/update ~ impls x (1 + files + resources);\n"
              "direct alerts equal the implementation fan-out.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

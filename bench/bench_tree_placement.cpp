// E1 — tree_placement: the paper's two placement equations (§4).
//
// Regenerates: (a) an exhaustive check that parent() inverts child() for
// every N <= 4096 and m in {1..8} (the paper claims the equations "are
// proved by mathematical induction ... also implemented in our system");
// (b) the depth/fan-out table that drives the choice of m; (c) wall-clock
// microbenchmarks of the placement functions via google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dist/mtree.hpp"

namespace {

using namespace wdoc::dist;

void verify_inverse() {
  std::uint64_t checks = 0;
  for (std::uint64_t m = 1; m <= 8; ++m) {
    for (std::uint64_t n = 1; n <= 4096; ++n) {
      for (std::uint64_t i = 1; i <= m; ++i) {
        std::uint64_t c = child_position(n, i, m);
        if (parent_position(c, m) != n) {
          std::printf("INVERSE VIOLATION: m=%llu n=%llu i=%llu\n",
                      static_cast<unsigned long long>(m),
                      static_cast<unsigned long long>(n),
                      static_cast<unsigned long long>(i));
          std::exit(1);
        }
        ++checks;
      }
    }
  }
  std::printf("inverse property verified for %llu (n,i,m) triples\n",
              static_cast<unsigned long long>(checks));
}

void print_depth_table() {
  std::printf("\nE1b: tree depth by station count and fan-out m\n");
  std::printf("%8s", "N \\ m");
  for (std::uint64_t m = 2; m <= 8; ++m) std::printf("%6llu", (unsigned long long)m);
  std::printf("\n");
  for (std::uint64_t n : {15ull, 63ull, 255ull, 1023ull, 4095ull}) {
    std::printf("%8llu", (unsigned long long)n);
    for (std::uint64_t m = 2; m <= 8; ++m) {
      std::printf("%6llu", (unsigned long long)tree_depth(n, m));
    }
    std::printf("\n");
  }
}

void print_level_population() {
  std::printf("\nE1c: breadth-first level population, m=3, N=40\n");
  const std::uint64_t N = 40, m = 3;
  std::uint64_t depth = tree_depth(N, m);
  for (std::uint64_t d = 0; d <= depth; ++d) {
    std::printf("  level %llu:", (unsigned long long)d);
    for (std::uint64_t k = 1; k <= N; ++k) {
      if (depth_of(k, m) == d) std::printf(" %llu", (unsigned long long)k);
    }
    std::printf("\n");
  }
}

void BM_ChildPosition(benchmark::State& state) {
  std::uint64_t n = 1;
  for (auto _ : state) {
    n = child_position(n % 100000 + 1, 2, 3);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ChildPosition);

void BM_ParentPosition(benchmark::State& state) {
  std::uint64_t k = 2;
  for (auto _ : state) {
    k = parent_position(k, 3) + 100;  // keep k >= 2
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_ParentPosition);

void BM_Ancestry(benchmark::State& state) {
  for (auto _ : state) {
    auto chain = ancestry(static_cast<std::uint64_t>(state.range(0)), 3);
    benchmark::DoNotOptimize(chain);
  }
}
BENCHMARK(BM_Ancestry)->Arg(100)->Arg(10000)->Arg(1000000);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E1: m-ary tree placement equations (paper section 4) ===\n");
  verify_inverse();
  print_depth_table();
  print_level_population();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E-http: the gateway under production load.
//
// A real HttpServer fronts three federated library shards (500 courses,
// 20% replicated) and a storage-backed document table. An *open-loop*
// Zipfian workload simulating 10^5 users (search / check-out / check-in /
// document-fetch, Poisson arrivals at the offered rate) is driven over
// `--conns` keep-alive pipelined connections; each simulated user is routed
// to one connection so its ledger ops stay FIFO. Latency is measured
// open-loop style — completion time minus *scheduled* arrival — so
// queueing delay counts against the server instead of throttling load.
//
// Reported: per-endpoint p50/p99 and sustained QPS, dumped with the full
// metrics registry into BENCH_http.json via --metrics-json. Request/
// response/byte counters are deterministic for a given seed (latency
// histograms and p50/p99/QPS gauges are not); CI drift-checks the counters.
//
// Tracing drill: --stall-micros=N --stall-every=K injects an N-microsecond
// stall into every K-th document fetch. The bench then self-checks the
// observability acceptance path: every stalled request must be tail-promoted
// with its full gateway→storage span chain, the fattest doc-latency bucket's
// exemplar must resolve to a captured trace, and the http.doc.latency
// fast-burn SLO alert must fire. GET /debug/slo is printed either way.
//
// Flags: --users= --courses= --ops= --rate= --conns= --seed= --workers=
//        --stall-micros= --stall-every=
#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/client.hpp"
#include "http/gateway.hpp"
#include "http/server.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "sim_cluster.hpp"
#include "storage/database.hpp"
#include "workload/library_corpus.hpp"
#include "workload/patterns.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t flag_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string encode_query(const std::string& q) {
  std::string out;
  for (char c : q) out += (c == ' ') ? '+' : c;
  return out;
}

struct PendingOp {
  std::int64_t scheduled_us = 0;  // absolute, from bench start
  workload::HttpOpKind kind = workload::HttpOpKind::search;
  bool bogus = false;
};

struct ConnResult {
  std::vector<std::int64_t> latency_us;  // per completed request, open-loop
  std::array<std::vector<std::int64_t>, 4> by_kind;
  std::int64_t last_completion_us = 0;
  std::uint64_t wrong_status = 0;
};

// One keep-alive pipelined connection: a writer thread paces requests on
// the open-loop schedule while a reader drains responses in FIFO order.
ConnResult drive_connection(const std::string& host, std::uint16_t port,
                            const std::vector<workload::HttpOp>& ops,
                            const std::vector<std::string>& courses,
                            const std::vector<std::string>& queries,
                            Clock::time_point start) {
  ConnResult result;
  http::HttpClient client;
  client.connect(host, port).expect("bench connect");
  (void)client.get("/healthz").expect("warmup");

  std::mutex mu;
  std::deque<PendingOp> inflight;
  std::condition_variable cv;

  std::thread writer([&] {
    for (const workload::HttpOp& op : ops) {
      std::this_thread::sleep_until(start + std::chrono::microseconds(op.at_micros));
      std::string target;
      std::string method = "GET";
      switch (op.kind) {
        case workload::HttpOpKind::search:
          target = "/search?q=" +
                   encode_query(queries[op.course_index % queries.size()]) +
                   "&limit=10";
          break;
        case workload::HttpOpKind::check_out:
          method = "POST";
          target = "/check-out?course=" + courses[op.course_index] +
                   "&student=" + std::to_string(op.user);
          break;
        case workload::HttpOpKind::check_in:
          method = "POST";
          target = "/check-in?course=" + courses[op.course_index] +
                   "&student=" + std::to_string(op.user);
          break;
        case workload::HttpOpKind::fetch:
          target = "/doc?course=" + (op.bogus ? "XX" + std::to_string(op.course_index)
                                              : courses[op.course_index]);
          break;
      }
      {
        std::lock_guard lock(mu);
        inflight.push_back(PendingOp{op.at_micros, op.kind, op.bogus});
      }
      cv.notify_one();
      client.send_request(method, target).expect("bench send");
    }
  });

  for (std::size_t done = 0; done < ops.size(); ++done) {
    PendingOp pending;
    {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return !inflight.empty(); });
      pending = inflight.front();
      inflight.pop_front();
    }
    http::ClientResponse rsp = client.read_response().expect("bench read");
    const std::int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                    Clock::now() - start)
                                    .count();
    const int want = pending.bogus ? 404 : 200;
    if (rsp.status != want) ++result.wrong_status;
    const std::int64_t latency = now_us - pending.scheduled_us;
    result.latency_us.push_back(latency);
    result.by_kind[static_cast<std::size_t>(pending.kind)].push_back(latency);
    result.last_completion_us = now_us;
  }
  writer.join();
  return result;
}

// DocumentSource wrapper that stalls every K-th fetch and remembers which
// traces it stalled (the ambient per-thread context names the request).
class StallingDocs final : public http::DocumentSource {
 public:
  StallingDocs(http::DocumentSource& inner, std::int64_t stall_micros,
               std::uint64_t every)
      : inner_(&inner), stall_micros_(stall_micros), every_(every) {}

  Result<std::string> fetch(const std::string& course_number) override {
    const std::uint64_t n = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (stall_micros_ > 0 && every_ != 0 && n % every_ == 0) {
      obs::SpanScope span("storage.stall");
      std::this_thread::sleep_for(std::chrono::microseconds(stall_micros_));
      const std::uint64_t trace = obs::RequestTracer::current().trace_id;
      if (trace != 0) {
        std::lock_guard lock(mu_);
        stalled_.push_back(trace);
      }
    }
    return inner_->fetch(course_number);
  }

  [[nodiscard]] std::vector<std::uint64_t> stalled() const {
    std::lock_guard lock(mu_);
    return stalled_;
  }

 private:
  http::DocumentSource* inner_;
  std::int64_t stall_micros_;
  std::uint64_t every_;
  std::atomic<std::uint64_t> calls_{0};
  mutable std::mutex mu_;
  std::vector<std::uint64_t> stalled_;
};

std::int64_t percentile(std::vector<std::int64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  MetricsDump metrics(argc, argv);

  workload::HttpTraceConfig trace_cfg;
  trace_cfg.users = flag_u64(argc, argv, "users", 100'000);
  trace_cfg.courses = flag_u64(argc, argv, "courses", 500);
  trace_cfg.ops = flag_u64(argc, argv, "ops", 40'000);
  // The default offered rate is sized so a single CI core sustains it with
  // headroom (the gateway saturates one core around 45k req/s); push --rate
  // up to find the saturation point on bigger machines.
  trace_cfg.rate_qps = static_cast<double>(flag_u64(argc, argv, "rate", 30'000));
  trace_cfg.seed = flag_u64(argc, argv, "seed", 4242);
  const std::size_t conns = flag_u64(argc, argv, "conns", 8);
  const std::size_t workers = flag_u64(argc, argv, "workers", 8);
  const auto stall_micros =
      static_cast<std::int64_t>(flag_u64(argc, argv, "stall-micros", 0));
  const std::uint64_t stall_every = flag_u64(argc, argv, "stall-every", 3);

  std::printf("=== E-http: gateway under an open-loop Zipfian workload ===\n");
  std::printf("%zu simulated users, %zu courses on 3 shards, %zu requests at "
              "%.0f req/s over %zu pipelined connections, %zu workers\n\n",
              trace_cfg.users, trace_cfg.courses, trace_cfg.ops, trace_cfg.rate_qps,
              conns, workers);

  // --- catalog + documents + gateway ---------------------------------------
  workload::LibraryCorpusConfig corpus_cfg;
  corpus_cfg.courses = trace_cfg.courses;
  corpus_cfg.shards = 3;
  corpus_cfg.seed = trace_cfg.seed;
  auto entries = workload::library_corpus(corpus_cfg);
  std::vector<library::VirtualLibrary> shards(corpus_cfg.shards);
  workload::populate_shards(shards, entries, corpus_cfg);
  auto db = storage::Database::in_memory();
  http::StorageDocumentSource docs(*db);
  std::vector<std::string> courses;
  for (const auto& e : entries) {
    docs.put(e.course_number, workload::course_document(e)).expect("put doc");
    courses.push_back(e.course_number);
  }
  std::vector<library::VirtualLibrary*> shard_ptrs;
  for (auto& s : shards) shard_ptrs.push_back(&s);
  StallingDocs stalling(docs, stall_micros, stall_every);
  http::GatewayConfig gw_cfg;
  // Evaluate the SLO engine every 250 ms: short enough that a stall drill
  // fires its fast-burn alert within the bench run, long enough to be
  // negligible per request.
  gw_cfg.slo.eval_period_micros = 250'000;
  http::Gateway gateway(gw_cfg, shard_ptrs, &stalling);

  http::ServerConfig server_cfg;
  server_cfg.workers = workers;
  http::HttpServer server(server_cfg,
                          [&](const http::Request& req) { return gateway.handle(req); });
  server.start().expect("server start");

  // --- schedule ------------------------------------------------------------
  auto trace = workload::open_loop_http_trace(trace_cfg);
  auto queries = workload::query_pool(corpus_cfg, 64);
  // Route each user to one connection so its ledger ops stay ordered.
  std::vector<std::vector<workload::HttpOp>> per_conn(conns);
  for (const auto& op : trace) per_conn[op.user % conns].push_back(op);

  // --- drive ---------------------------------------------------------------
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(50);
  std::vector<ConnResult> results(conns);
  std::vector<std::thread> drivers;
  drivers.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    drivers.emplace_back([&, c] {
      results[c] = drive_connection("127.0.0.1", server.port(), per_conn[c], courses,
                                    queries, start);
    });
  }
  for (auto& d : drivers) d.join();

  // SLO status as the server saw it, after a forced evaluation.
  std::string slo_json;
  {
    http::HttpClient probe;
    probe.connect("127.0.0.1", server.port()).expect("slo probe connect");
    http::ClientResponse rsp = probe.get("/debug/slo").expect("slo probe");
    slo_json = rsp.body;
  }
  server.stop();

  // --- report --------------------------------------------------------------
  std::vector<std::int64_t> all;
  std::array<std::vector<std::int64_t>, 4> by_kind;
  std::int64_t makespan_us = 0;
  std::uint64_t wrong = 0;
  for (auto& r : results) {
    all.insert(all.end(), r.latency_us.begin(), r.latency_us.end());
    for (std::size_t k = 0; k < 4; ++k) {
      by_kind[k].insert(by_kind[k].end(), r.by_kind[k].begin(), r.by_kind[k].end());
    }
    makespan_us = std::max(makespan_us, r.last_completion_us);
    wrong += r.wrong_status;
  }
  const double qps =
      static_cast<double>(all.size()) / (static_cast<double>(makespan_us) / 1e6);
  const std::int64_t p50 = percentile(all, 0.50);
  const std::int64_t p99 = percentile(all, 0.99);

  std::printf("  %-10s %10s %12s %12s\n", "endpoint", "requests", "p50(us)", "p99(us)");
  auto& reg = obs::MetricsRegistry::global();
  for (std::size_t k = 0; k < 4; ++k) {
    auto kind = static_cast<workload::HttpOpKind>(k);
    std::printf("  %-10s %10zu %12lld %12lld\n", workload::http_op_kind_name(kind),
                by_kind[k].size(),
                static_cast<long long>(percentile(by_kind[k], 0.50)),
                static_cast<long long>(percentile(by_kind[k], 0.99)));
    reg.counter("http_bench.ops", {{"kind", workload::http_op_kind_name(kind)}})
        .inc(by_kind[k].size());
  }
  std::printf("\n  overall: %zu requests in %.2f s -> %.0f req/s sustained\n",
              all.size(), static_cast<double>(makespan_us) / 1e6, qps);
  std::printf("  open-loop latency: p50 %lld us, p99 %lld us\n",
              static_cast<long long>(p50), static_cast<long long>(p99));
  if (wrong != 0) {
    std::printf("  UNEXPECTED STATUSES: %llu\n", static_cast<unsigned long long>(wrong));
  }

  reg.gauge("http_bench.p50_us").set(p50);
  reg.gauge("http_bench.p99_us").set(p99);
  reg.gauge("http_bench.qps").set(static_cast<std::int64_t>(qps));
  reg.gauge("http_bench.simulated_users").set(static_cast<std::int64_t>(trace_cfg.users));
  reg.counter("http_bench.wrong_status").inc(wrong);

  std::printf("\n  tracing: %llu requests, promoted head=%llu error=%llu "
              "tail=%llu, discarded=%llu\n",
              static_cast<unsigned long long>(reg.counter("obs.trace.requests").value()),
              static_cast<unsigned long long>(
                  reg.counter("obs.trace.promoted", {{"reason", "head"}}).value()),
              static_cast<unsigned long long>(
                  reg.counter("obs.trace.promoted", {{"reason", "error"}}).value()),
              static_cast<unsigned long long>(
                  reg.counter("obs.trace.promoted", {{"reason", "tail_latency"}}).value()),
              static_cast<unsigned long long>(reg.counter("obs.trace.discarded").value()));
  std::printf("  slo: %s\n", slo_json.c_str());

  // --- stall-drill self-check ----------------------------------------------
  bool drill_ok = true;
  if (stall_micros > 0) {
    // (a) every stalled request was tail-promoted with its complete
    // gateway -> storage span chain.
    const std::vector<obs::SpanRecord> spans = obs::Tracer::global().spans();
    std::unordered_map<std::uint64_t, std::set<std::string>> names_by_trace;
    for (const obs::SpanRecord& s : spans) {
      if (s.trace_id != 0) names_by_trace[s.trace_id].insert(s.name);
    }
    const std::vector<std::uint64_t> stalled = stalling.stalled();
    std::size_t incomplete = 0;
    for (std::uint64_t t : stalled) {
      auto it = names_by_trace.find(t);
      if (it == names_by_trace.end() || it->second.count("GET /doc") == 0 ||
          it->second.count("gateway.doc") == 0 ||
          it->second.count("storage.stall") == 0 ||
          it->second.count("storage.doc.fetch") == 0) {
        ++incomplete;
      }
    }
    std::printf("  drill: %zu stalled requests, %zu missing full span chains\n",
                stalled.size(), incomplete);
    if (stalled.empty() || incomplete != 0) drill_ok = false;

    // (b) the fattest doc-latency bucket's exemplar resolves to a captured
    // trace.
    auto& doc_hist = reg.histogram("http.request_micros", {{"endpoint", "doc"}});
    std::uint64_t exemplar = 0;
    for (std::size_t i = obs::Histogram::kBuckets; i-- > 0;) {
      if (doc_hist.bucket_count(i) != 0) {
        exemplar = doc_hist.exemplar(i);
        break;
      }
    }
    const bool exemplar_ok = exemplar != 0 && names_by_trace.count(exemplar) != 0;
    std::printf("  drill: top doc bucket exemplar trace=%llu resolvable=%s\n",
                static_cast<unsigned long long>(exemplar), exemplar_ok ? "yes" : "NO");
    if (!exemplar_ok) drill_ok = false;

    // (c) the fast-burn alert on http.doc.latency fired.
    const std::uint64_t fast_alerts =
        reg.counter("obs.slo.alerts",
                    {{"slo", "http.doc.latency"}, {"severity", "fast"}})
            .value();
    std::printf("  drill: http.doc.latency fast-burn alerts fired=%llu\n",
                static_cast<unsigned long long>(fast_alerts));
    if (fast_alerts == 0) drill_ok = false;
    std::printf("  drill: %s\n", drill_ok ? "PASS" : "FAIL");
  }

  return (wrong == 0 && drill_ok) ? 0 : 1;
}

// E4 — blob_sharing: class-held BLOBs avoid disk abuse (claim C3).
//
// K course instances are instantiated from document classes whose resources
// are drawn Zipf-style from a shared pool (the corpus generator). Two
// designs are compared on one station:
//   copy-everything — each instance duplicates its BLOB bytes
//                     (= the BlobStore's *logical* bytes);
//   class-shared    — BLOBs live in the class, instances hold pointers
//                     (= the BlobStore's *stored* bytes).
// Paper shape: stored bytes grow with the unique pool and flatten, while
// copy-everything grows linearly with K; structure bytes (HTML etc.) are
// copied in both designs and stay small.
#include <cstdio>

#include "dist/object_store.hpp"
#include "workload/corpus.hpp"

using namespace wdoc;

int main() {
  std::printf("=== E4: BLOB sharing across instantiated course instances ===\n");
  std::printf("resources drawn Zipf(1.0) from a 40-clip pool (~video/audio mix)\n\n");
  std::printf("%10s %16s %18s %18s %12s\n", "instances", "structure(MB)",
              "class-shared(MB)", "copy-every(MB)", "savings");

  for (std::size_t courses : {5u, 10u, 20u, 40u, 80u}) {
    auto db = storage::Database::in_memory();
    blob::BlobStore blobs;
    docmodel::Repository repo(*db, blobs);
    docmodel::install_schemas(*db).expect("schemas");

    workload::CorpusConfig cfg;
    cfg.courses = courses;
    cfg.impls_per_course = 1;
    cfg.resources_per_impl = 6;
    cfg.unique_resources = 40;
    cfg.zipf_s = 1.0;
    cfg.seed = 1999;
    auto corpus = workload::generate_corpus(repo, cfg).expect("corpus");

    // Register every implementation as an instance, declare its class, and
    // instantiate a per-semester copy — the paper's reuse loop.
    dist::ObjectStore objects(blobs);
    for (const auto& manifest : corpus.all_manifests()) {
      objects.put_instance(manifest, false).expect("instance");
      objects.declare_class(manifest.doc_key).expect("class");
      (void)objects.instantiate(manifest.doc_key, manifest.doc_key + "#spring")
          .expect("copy");
    }

    double structure_mb = static_cast<double>(objects.structure_bytes()) / 1e6;
    double shared_mb = static_cast<double>(blobs.stored_bytes()) / 1e6;
    double copy_mb = static_cast<double>(blobs.logical_bytes()) / 1e6;
    std::printf("%10zu %16.2f %18.2f %18.2f %11.1fx\n", courses, structure_mb,
                shared_mb, copy_mb, copy_mb / shared_mb);
  }

  std::printf("\nbytes copied at instantiation time (the paper: 'the duplication\n"
              "process involves objects of relatively smaller sizes, such as\n"
              "HTML files'):\n");
  {
    auto db = storage::Database::in_memory();
    blob::BlobStore blobs;
    docmodel::Repository repo(*db, blobs);
    docmodel::install_schemas(*db).expect("schemas");
    workload::CorpusConfig cfg;
    cfg.courses = 1;
    cfg.seed = 7;
    auto corpus = workload::generate_corpus(repo, cfg).expect("corpus");
    auto manifests = corpus.all_manifests();
    const auto& manifest = manifests[0];
    dist::ObjectStore objects(blobs);
    objects.put_instance(manifest, false).expect("instance");
    objects.declare_class(manifest.doc_key).expect("class");
    std::uint64_t blob_before = blobs.stored_bytes();
    std::uint64_t structure_before = objects.structure_bytes();
    (void)objects.instantiate(manifest.doc_key, "copy").expect("copy");
    std::printf("  instantiate copied %llu structure bytes and %llu BLOB bytes\n",
                static_cast<unsigned long long>(objects.structure_bytes() -
                                                structure_before),
                static_cast<unsigned long long>(blobs.stored_bytes() - blob_before));
  }
  return 0;
}

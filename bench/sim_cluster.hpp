// Shared harness for the simulation experiments: a cluster of stations on
// one SimNetwork, each with its own BlobStore/ObjectStore/StationNode,
// wired into the paper's m-ary tree.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "dist/station_node.hpp"
#include "net/sim_network.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace wdoc::bench {

// Every sim bench accepts --metrics-json=<path> and --trace-json=<path>:
// when present, the global obs registry snapshot is dumped as stable JSON
// on exit (suitable for BENCH_*.json trajectory tracking in CI) and the
// global tracer is enabled and drained into a Chrome trace-event file for
// ui.perfetto.dev. Construct one at the top of main(); the flags are
// stripped from argv so downstream parsers (e.g. google-benchmark) never
// see them. While alive, an unhandled exception (e.g. a failed expect())
// dumps the flight recorder to stderr before aborting.
class MetricsDump {
 public:
  MetricsDump(int& argc, char** argv)
      : path_(obs::metrics_json_arg(argc, argv)),
        trace_path_(obs::trace_json_arg(argc, argv)),
        previous_terminate_(std::set_terminate(&MetricsDump::on_terminate)) {}
  ~MetricsDump() {
    std::set_terminate(previous_terminate_);
    if (!trace_path_.empty()) {
      if (obs::write_trace_file(trace_path_)) {
        std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write trace to %s\n",
                     trace_path_.c_str());
      }
    }
    if (path_.empty()) return;
    if (obs::write_json_file(path_)) {
      std::fprintf(stderr, "metrics snapshot written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics snapshot to %s\n",
                   path_.c_str());
    }
  }
  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

 private:
  static void on_terminate() {
    obs::FlightRecorder::global().dump_to_stderr(
        "bench aborted — flight recorder");
    std::abort();
  }

  std::string path_;
  std::string trace_path_;
  std::terminate_handler previous_terminate_;
};

class SimCluster {
 public:
  SimCluster(std::size_t n, std::uint64_t m, const net::StationLink& link,
             dist::NodeConfig config = {}, std::uint64_t seed = 42)
      : net_(seed) {
    net_.reserve_stations(n);
    ids_.reserve(n);
    blobs_.reserve(n);
    stores_.reserve(n);
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      StationId id = net_.add_station(link);
      ids_.push_back(id);
      blobs_.push_back(std::make_unique<blob::BlobStore>());
      stores_.push_back(std::make_unique<dist::ObjectStore>(*blobs_.back()));
      nodes_.push_back(
          std::make_unique<dist::StationNode>(net_, id, *stores_.back(), config));
      nodes_.back()->bind();
    }
    set_m(m);
  }

  void set_m(std::uint64_t m) {
    // One broadcast vector shared by every node — mandatory at N=10,000.
    auto shared = std::make_shared<const std::vector<StationId>>(ids_);
    for (auto& node : nodes_) node->set_tree(shared, m);
  }

  [[nodiscard]] dist::StationNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] dist::ObjectStore& store(std::size_t i) { return *stores_[i]; }
  [[nodiscard]] blob::BlobStore& blobs(std::size_t i) { return *blobs_[i]; }
  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] StationId id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

  // Drops every non-root copy of `doc_key` and resets stats, so one cluster
  // can host several strategies back to back.
  void reset_doc(const std::string& doc_key) {
    for (std::size_t i = 1; i < size(); ++i) {
      if (stores_[i]->doc(doc_key) != nullptr) {
        (void)stores_[i]->remove(doc_key);
      }
      (void)blobs_[i]->gc();
    }
    net_.reset_stats();
  }

  [[nodiscard]] std::size_t count_materialized(const std::string& doc_key) const {
    std::size_t n = 0;
    for (const auto& store : stores_) {
      if (store->has_materialized(doc_key)) ++n;
    }
    return n;
  }

 private:
  net::SimNetwork net_;
  std::vector<StationId> ids_;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs_;
  std::vector<std::unique_ptr<dist::ObjectStore>> stores_;
  std::vector<std::unique_ptr<dist::StationNode>> nodes_;
};

// A lecture document of the given BLOB payload.
[[nodiscard]] inline dist::DocManifest make_lecture(const std::string& key,
                                                    std::uint64_t blob_bytes,
                                                    StationId home,
                                                    std::size_t blob_count = 1) {
  dist::DocManifest m;
  m.doc_key = key;
  m.structure_bytes = 64 << 10;
  m.home = home;
  for (std::size_t i = 0; i < blob_count; ++i) {
    dist::BlobRef ref;
    ref.digest = digest128(key + "-blob-" + std::to_string(i));
    ref.size = blob_bytes / blob_count;
    ref.type = blob::MediaType::video;
    ref.playout_ms = static_cast<std::int64_t>(i) * 120000;
    m.blobs.push_back(ref);
  }
  return m;
}

inline constexpr net::StationLink kCampusLink{10e6, 10e6, SimTime::millis(15), 0.0};

}  // namespace wdoc::bench

// E10 — adaptive_m: "the system maintains the sizes of m's, based on the
// number of workstations and the physical network bandwidth for different
// types of multimedia data ... adaptive to changing network conditions."
//
// A semester of 8 broadcasts mixes media (10 MB video lectures vs 12 KB
// MIDI note hand-outs) while the campus uplink drifts (10 -> 2 -> 20 Mb/s)
// and the propagation latency swings (15 ms LAN weeks vs 300 ms overseas
// weeks). Strategies: fixed m in {1, 2, 8} for everything vs the
// coordinator's per-media adaptive m recomputed from the measured
// conditions before each broadcast. Metric: makespan per week and the mean.
// Paper shape: big payloads want narrow trees (serialization dominates),
// tiny payloads on long-latency weeks want wide trees (depth dominates); no
// fixed m wins both, the adaptive policy tracks the per-regime winner.
#include <cstdio>

#include "dist/coordinator.hpp"
#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

constexpr std::size_t kStations = 63;

struct Week {
  double bps;
  double latency_s;
  blob::MediaType media;
  std::uint64_t bytes;
};

constexpr Week kWeeks[] = {
    {10e6, 0.015, blob::MediaType::video, 10 << 20},
    {10e6, 0.300, blob::MediaType::midi, 12 << 10},
    {2e6, 0.015, blob::MediaType::video, 10 << 20},
    {2e6, 0.300, blob::MediaType::midi, 12 << 10},
    {2e6, 0.015, blob::MediaType::video, 10 << 20},
    {20e6, 0.300, blob::MediaType::midi, 12 << 10},
    {20e6, 0.015, blob::MediaType::video, 10 << 20},
    {20e6, 0.300, blob::MediaType::midi, 12 << 10},
};

double broadcast_once(std::uint64_t m, const Week& week, std::size_t index) {
  net::StationLink link;
  link.up_bps = week.bps;
  link.down_bps = week.bps;
  link.latency = SimTime::seconds(week.latency_s / 2);  // per side
  SimCluster cluster(kStations, m, link, {}, /*seed=*/index + 1);
  auto doc = make_lecture("http://mmu.edu/w" + std::to_string(index), week.bytes,
                          cluster.id(0));
  cluster.node(0).broadcast_push(doc).expect("push");
  cluster.net().run();
  return cluster.net().now().as_seconds();
}

}  // namespace

int main() {
  std::printf("=== E10: adaptive per-media m under drifting conditions ===\n");
  std::printf("%zu stations; video weeks carry 10 MB, MIDI weeks 12 KB;\n"
              "bandwidth drifts 10 -> 2 -> 20 Mb/s, latency 15 ms <-> 300 ms\n\n",
              kStations);

  std::printf("%5s %6s %9s %8s", "week", "media", "bw(Mb/s)", "lat(ms)");
  for (std::uint64_t m : {1ull, 2ull, 8ull}) {
    std::printf("   fixed m=%llu", static_cast<unsigned long long>(m));
  }
  std::printf("   adaptive(m)\n");

  double fixed_total[3] = {0, 0, 0};
  double adaptive_total = 0;
  dist::Coordinator coordinator;
  for (std::size_t i = 0; i < kStations; ++i) {
    coordinator.register_station(StationId{i + 1});
  }

  for (std::size_t index = 0; index < std::size(kWeeks); ++index) {
    const Week& week = kWeeks[index];
    std::printf("%5zu %6s %9.0f %8.0f", index + 1, blob::media_type_name(week.media),
                week.bps / 1e6, week.latency_s * 1e3);
    const std::uint64_t fixed[] = {1, 2, 8};
    for (int f = 0; f < 3; ++f) {
      double t = broadcast_once(fixed[f], week, index);
      fixed_total[f] += t;
      std::printf("  %9.2fs", t);
    }
    // The administrator re-measures conditions and adapts per media type.
    coordinator.adapt(week.bps, week.latency_s);
    std::uint64_t m = coordinator.m_for(week.media);
    double t = broadcast_once(m, week, index);
    adaptive_total += t;
    std::printf("  %7.2fs(%llu)\n", t, static_cast<unsigned long long>(m));
  }

  std::printf("\n%30s", "mean makespan:");
  for (double t : fixed_total) std::printf("  %9.2fs", t / std::size(kWeeks));
  std::printf("  %9.2fs\n", adaptive_total / std::size(kWeeks));
  std::printf("\nshape check: video weeks favour small m (uplink serialization\n"
              "dominates), long-latency MIDI weeks favour large m (tree depth\n"
              "dominates); only the adaptive policy is near-best in both.\n");
  return 0;
}

// E3 — prebroadcast_vs_ondemand: real-time demonstration feasibility
// (claim C1).
//
// A lecture is a timed schedule of BLOBs (playout deadlines every 2
// simulated minutes). Three strategies per student station:
//   push       — the instructor pre-broadcasts everything before class;
//   on-demand  — each BLOB is fetched from the instructor at its deadline;
//   prefetch-1 — on-demand with one-BLOB lookahead.
// Metrics: startup latency, stall count, total stall time. Paper shape:
// pre-broadcast plays stall-free where on-demand stalls on every large
// clip, because a 10 Mb/s link needs ~8.4 s per 10 MB BLOB.
#include <cstdio>

#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

struct PlaybackResult {
  double startup_s = 0;     // delay before the first item can play
  int stalls = 0;           // deadlines missed
  double stall_time_s = 0;  // total time spent waiting past deadlines
};

// Plays the manifest at `student`, fetching each blob from the instructor
// when `lookahead` items before its deadline (SIZE_MAX = everything was
// preloaded by a broadcast).
PlaybackResult play_on_demand(SimCluster& cluster, const dist::DocManifest& doc,
                              std::size_t student, std::size_t lookahead) {
  PlaybackResult out;
  auto& net = cluster.net();
  SimTime class_start = net.now();
  // Arrival time per blob index.
  std::vector<SimTime> arrival(doc.blobs.size(), SimTime::zero());
  std::vector<bool> arrived(doc.blobs.size(), false);

  // Issue the fetch for blob i at (deadline of i - lookahead items)'s time;
  // lookahead 0 = fetch exactly at the deadline.
  for (std::size_t i = 0; i < doc.blobs.size(); ++i) {
    std::size_t issue_at_item = i >= lookahead ? i - lookahead : 0;
    SimTime issue_time =
        class_start + SimTime::millis(doc.blobs[issue_at_item].playout_ms.value_or(0));
    net.schedule_at(issue_time, [&, i] {
      cluster.node(student)
          .fetch_blob(cluster.id(0), doc.doc_key, doc.blobs[i],
                      [&, i](Status s, SimTime at) {
                        if (s.is_ok()) {
                          arrival[i] = at;
                          arrived[i] = true;
                        }
                      })
          .expect("fetch_blob");
    });
  }
  net.run();

  // Score against deadlines.
  for (std::size_t i = 0; i < doc.blobs.size(); ++i) {
    SimTime deadline = class_start + SimTime::millis(doc.blobs[i].playout_ms.value_or(0));
    if (!arrived[i]) {
      out.stalls++;
      continue;
    }
    if (i == 0) out.startup_s = (arrival[0] - class_start).as_seconds();
    if (arrival[i] > deadline) {
      out.stalls++;
      out.stall_time_s += (arrival[i] - deadline).as_seconds();
    }
  }
  return out;
}

// Scale smoke (--n=<stations>): one chunked full-lecture pre-broadcast on a
// binary tree of the requested size. Exercises the O(log n) fabric and the
// zero-copy relay path at populations the E3 matrix never reaches; CI runs
// it at N=1023 (depth 9) under a wall-clock budget and diff-checks the
// payload-copy counters. Returns nonzero if any station misses the lecture.
int run_scale_smoke(std::size_t n) {
  std::printf("=== pre-broadcast scale smoke: N=%zu, binary tree ===\n", n);
  SimCluster cluster(n, 2, kCampusLink);
  // A modest lecture: the point is fan-out breadth, not per-link volume.
  auto doc = make_lecture("http://mmu.edu/lec-scale", 2ull << 20, cluster.id(0), 4);
  cluster.node(0).broadcast_push(doc).expect("push");
  cluster.net().run();
  const std::size_t delivered = cluster.count_materialized(doc.doc_key);
  std::printf("delivered %zu/%zu, sim makespan %.2f s\n", delivered, n,
              cluster.net().now().as_seconds());
  std::printf("payload copies: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(net::Payload::copies_total()),
              static_cast<unsigned long long>(net::Payload::bytes_copied_total()));
  return delivered == n ? 0 : 1;
}

// Strips --n=<stations> from argv; 0 = not present.
std::size_t scale_arg(int& argc, char** argv) {
  std::size_t n = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<std::size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsDump metrics(argc, argv);
  if (std::size_t n = scale_arg(argc, argv); n != 0) return run_scale_smoke(n);
  std::printf("=== E3: pre-broadcast vs on-demand lecture playback ===\n");
  std::printf("lecture: 15 BLOBs, deadline every 120 s; 10 Mb/s links\n\n");

  for (std::uint64_t blob_mb : {2ull, 10ull, 25ull}) {
    std::printf("BLOB size %llu MB (total %llu MB)\n",
                static_cast<unsigned long long>(blob_mb),
                static_cast<unsigned long long>(blob_mb * 15));
    std::printf("  %-22s %12s %8s %14s\n", "strategy", "startup(s)", "stalls",
                "stall time(s)");

    const std::size_t kStudent = 5;

    // Strategy 1a: chunked pipelined pre-broadcast (the default). Everything
    // is local before class starts; interior stations relay each verified
    // chunk before the next arrives.
    {
      SimCluster cluster(8, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", (blob_mb * 15) << 20, cluster.id(0), 15);
      cluster.node(0).broadcast_push(doc).expect("push");
      cluster.net().run();
      double preload_s = cluster.net().now().as_seconds();
      bool local = cluster.store(kStudent).has_materialized(doc.doc_key);
      // All deadlines met from the local copy: zero stalls by construction;
      // report the preload cost as context.
      std::printf("  %-22s %12.2f %8d %14.2f   (preload took %.1f s before class)\n",
                  "pre-broadcast", 0.0, local ? 0 : 15, 0.0, preload_s);
    }

    // Strategy 1b: the historical whole-manifest store-and-forward push —
    // each hop waits for the entire lecture before forwarding.
    {
      SimCluster cluster(8, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", (blob_mb * 15) << 20, cluster.id(0), 15);
      cluster.node(0).broadcast_push_store_forward(doc).expect("push");
      cluster.net().run();
      double preload_s = cluster.net().now().as_seconds();
      bool local = cluster.store(kStudent).has_materialized(doc.doc_key);
      std::printf("  %-22s %12.2f %8d %14.2f   (preload took %.1f s before class)\n",
                  "pre-broadcast (s&f)", 0.0, local ? 0 : 15, 0.0, preload_s);
    }

    // Strategy 2: pure on-demand at each deadline.
    {
      SimCluster cluster(8, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", (blob_mb * 15) << 20, cluster.id(0), 15);
      cluster.store(0).put_instance(doc, false).expect("seed instructor");
      PlaybackResult r = play_on_demand(cluster, doc, kStudent, 0);
      std::printf("  %-22s %12.2f %8d %14.2f\n", "on-demand", r.startup_s, r.stalls,
                  r.stall_time_s);
    }

    // Strategy 3: on-demand with one-item lookahead.
    {
      SimCluster cluster(8, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", (blob_mb * 15) << 20, cluster.id(0), 15);
      cluster.store(0).put_instance(doc, false).expect("seed instructor");
      PlaybackResult r = play_on_demand(cluster, doc, kStudent, 1);
      std::printf("  %-22s %12.2f %8d %14.2f\n", "on-demand+prefetch1", r.startup_s,
                  r.stalls, r.stall_time_s);
    }
    std::printf("\n");
  }

  // C1 at depth: the same 10 MB-per-BLOB lecture, but the student sits at
  // the deepest leaf of progressively taller binary trees. On-demand cost
  // is depth-independent (the fetch tunnels to the instructor), while the
  // pre-broadcast preload pays the tree — so this isolates how the chunked
  // relay keeps deep trees affordable where store-and-forward cannot.
  std::printf("depth scaling (10 MB BLOBs, deepest student, m=2)\n");
  std::printf("  %6s %6s %16s %18s %14s\n", "N", "depth", "chunked preload(s)",
              "s&f preload(s)", "on-demand stalls");
  for (std::size_t n : {8u, 63u, 255u, 1023u}) {
    const std::size_t student = n - 1;
    double chunked_s = 0, sf_s = 0;
    int stalls = 0;
    {
      SimCluster cluster(n, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", 150ull << 20, cluster.id(0), 15);
      cluster.node(0).broadcast_push(doc).expect("push");
      cluster.net().run();
      chunked_s = cluster.net().now().as_seconds();
      if (!cluster.store(student).has_materialized(doc.doc_key)) stalls = -1;
    }
    {
      SimCluster cluster(n, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", 150ull << 20, cluster.id(0), 15);
      cluster.node(0).broadcast_push_store_forward(doc).expect("push");
      cluster.net().run();
      sf_s = cluster.net().now().as_seconds();
    }
    {
      SimCluster cluster(n, 2, kCampusLink);
      auto doc = make_lecture("http://mmu.edu/lec", 150ull << 20, cluster.id(0), 15);
      cluster.store(0).put_instance(doc, false).expect("seed instructor");
      PlaybackResult r = play_on_demand(cluster, doc, student, 0);
      if (stalls == 0) stalls = r.stalls;
    }
    std::size_t depth = 0;
    for (std::size_t p = n; p > 1; p /= 2) ++depth;
    std::printf("  %6zu %6zu %16.1f %18.1f %14d\n", n, depth, chunked_s, sf_s,
                stalls);
  }
  std::printf("\n");

  std::printf("shape check: a 10 Mb/s link moves 10 MB in ~8.4 s, so on-demand\n"
              "startup grows with BLOB size while pre-broadcast stays stall-free;\n"
              "lookahead hides one transfer but not a bandwidth deficit.\n");
  return 0;
}

// E5 — watermark_replication: "when a document instance is retrieved from a
// remote station more than a watermark frequency, physical multimedia data
// are copied to the remote station" (claim C4).
//
// Stations replay a Zipfian read trace over 20 documents homed at the
// instructor station. The watermark w sweeps {1,2,4,8,16,inf}; metrics are
// mean retrieval latency, WAN bytes, and replicas created. Paper shape:
// lower watermarks replicate hot documents sooner, cutting latency and WAN
// traffic at the cost of more local disk.
#include <cstdio>

#include "common/stats.hpp"
#include "sim_cluster.hpp"
#include "workload/patterns.hpp"

using namespace wdoc;
using namespace wdoc::bench;

int main() {
  std::printf("=== E5: watermark-frequency replication ===\n");
  std::printf("8 stations, 20 documents (2 MB each) homed at station 1,\n"
              "600 Zipf(1.0) reads from stations 2..8\n\n");
  std::printf("%12s %13s %10s %10s %10s %10s %16s\n", "watermark", "mean lat(s)",
              "p50(s)", "p99(s)", "WAN(GB)", "replicas", "disk/station(MB)");

  const std::size_t kStations = 8;
  const std::size_t kDocs = 20;
  const std::size_t kReads = 600;

  auto trace = workload::zipf_access_trace(kStations - 1, kDocs, kReads, 1.0, 99);

  for (std::uint64_t watermark : {1ull, 2ull, 4ull, 8ull, 16ull,
                                  1000000ull /* = never */}) {
    dist::NodeConfig config;
    config.watermark = watermark;
    SimCluster cluster(kStations, 3, kCampusLink, config, /*seed=*/5);

    // Seed documents at the instructor (root) station.
    std::vector<dist::DocManifest> docs;
    for (std::size_t d = 0; d < kDocs; ++d) {
      auto doc = make_lecture("http://mmu.edu/doc" + std::to_string(d), 2 << 20,
                              cluster.id(0));
      cluster.store(0).put_instance(doc, false).expect("seed");
      docs.push_back(doc);
    }

    Summary latency;
    Percentiles percentiles;
    for (const auto& op : trace) {
      std::size_t station = 1 + op.station_index;  // skip the instructor
      SimTime start = cluster.net().now();
      cluster.node(station)
          .fetch(docs[op.doc_index].doc_key,
                 [&](Result<dist::DocManifest> r, SimTime at) {
                   if (r.is_ok()) {
                     latency.add((at - start).as_seconds());
                     percentiles.add((at - start).as_seconds());
                   }
                 })
          .expect("fetch");
      cluster.net().run();  // serialize reads: think "one student at a time"
    }

    std::uint64_t replicas = 0;
    std::uint64_t disk = 0;
    for (std::size_t i = 1; i < kStations; ++i) {
      replicas += cluster.node(i).stats().replications;
      disk += cluster.store(i).disk_bytes();
    }
    std::printf("%12s %13.3f %10.3f %10.3f %10.2f %10llu %16.1f\n",
                watermark >= 1000000 ? "never" : std::to_string(watermark).c_str(),
                latency.mean(), percentiles.p50(), percentiles.p99(),
                static_cast<double>(cluster.net().total_bytes_on_wire()) / 1e9,
                static_cast<unsigned long long>(replicas),
                static_cast<double>(disk) / (kStations - 1) / 1e6);
  }

  std::printf("\nshape check: latency and WAN bytes fall monotonically as the\n"
              "watermark drops; replica count and per-station disk rise.\n");

  // --- ablation: relay caching at intermediate stations -------------------
  // The paper's choice: "if a workstation (and its child workstations) does
  // not review a lecture, it is not necessary to duplicate the lecture" —
  // i.e. relays do NOT keep copies. The ablation flips that.
  std::printf("\nE5b ablation: should pull relays cache what they forward?\n");
  std::printf("%-18s %16s %12s %18s\n", "relay policy", "mean latency(s)",
              "WAN(GB)", "disk all stations(MB)");
  for (bool relay_cache : {false, true}) {
    dist::NodeConfig config;
    config.watermark = 4;
    config.relay_cache = relay_cache;
    SimCluster cluster(kStations, 3, kCampusLink, config, /*seed=*/5);
    std::vector<dist::DocManifest> docs;
    for (std::size_t d = 0; d < kDocs; ++d) {
      auto doc = make_lecture("http://mmu.edu/doc" + std::to_string(d), 2 << 20,
                              cluster.id(0));
      cluster.store(0).put_instance(doc, false).expect("seed");
      docs.push_back(doc);
    }
    double total_latency = 0;
    std::size_t completed = 0;
    for (const auto& op : trace) {
      std::size_t station = 1 + op.station_index;
      SimTime start = cluster.net().now();
      cluster.node(station)
          .fetch(docs[op.doc_index].doc_key,
                 [&](Result<dist::DocManifest> r, SimTime at) {
                   if (r.is_ok()) {
                     total_latency += (at - start).as_seconds();
                     ++completed;
                   }
                 })
          .expect("fetch");
      cluster.net().run();
    }
    std::uint64_t disk = 0;
    for (std::size_t i = 1; i < kStations; ++i) disk += cluster.store(i).disk_bytes();
    std::printf("%-18s %16.3f %12.2f %18.1f\n",
                relay_cache ? "cache-at-relays" : "paper (no cache)",
                total_latency / static_cast<double>(completed),
                static_cast<double>(cluster.net().total_bytes_on_wire()) / 1e9,
                static_cast<double>(disk) / 1e6);
  }
  std::printf("\nE5b shape: relay caching trades extra disk at inner-tree\n"
              "stations for shorter pull chains (lower latency and WAN bytes);\n"
              "the paper's no-cache choice conserves disk, consistent with its\n"
              "'buffer spaces are used only' goal.\n");
  return 0;
}

// E12 — scm_checkinout: the configuration-management layer behind the
// virtual library's check-in/out workflow (paper sections 1 and 5).
//
// Measures version-chain growth (check-out/in cycles), contention between
// instructors on one item, and diff cost as documents grow.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "scm/scm_store.hpp"

using namespace wdoc;
using namespace wdoc::scm;

namespace {

Bytes make_text(std::size_t lines, std::uint64_t seed) {
  Rng rng(seed);
  std::string text;
  for (std::size_t i = 0; i < lines; ++i) {
    text += "lecture line " + std::to_string(rng.uniform(10000)) + "\n";
  }
  return Bytes(text.begin(), text.end());
}

void BM_CheckoutCheckinCycle(benchmark::State& state) {
  ScmStore scm;
  scm.add_item("course", make_text(50, 1), "shih", 0).expect("item");
  std::int64_t now = 1;
  std::uint64_t edit = 1000;  // disjoint from the seed of the initial content
  for (auto _ : state) {
    scm.check_out("course", UserId{1}, true, now++).expect("out");
    Bytes next = make_text(50, ++edit);
    scm.check_in("course", UserId{1}, std::move(next), "edit", now++).expect("in");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckoutCheckinCycle);

void BM_ContendedCheckout(benchmark::State& state) {
  // One writer holds the item; N-1 others poll and fail — the cost of a
  // refused write check-out.
  ScmStore scm;
  scm.add_item("course", make_text(50, 1), "shih", 0).expect("item");
  scm.check_out("course", UserId{1}, true, 0).expect("holder");
  std::uint64_t u = 2;
  for (auto _ : state) {
    Status s = scm.check_out("course", UserId{u++}, true, 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ContendedCheckout);

void BM_HistoryLookup(benchmark::State& state) {
  ScmStore scm;
  scm.add_item("course", make_text(20, 1), "shih", 0).expect("item");
  const auto versions = static_cast<std::size_t>(state.range(0));
  for (std::size_t v = 0; v < versions; ++v) {
    scm.check_out("course", UserId{1}, true, static_cast<std::int64_t>(v)).expect("o");
    scm.check_in("course", UserId{1}, make_text(20, v + 2), "e",
                 static_cast<std::int64_t>(v))
        .expect("i");
  }
  for (auto _ : state) {
    auto h = scm.history("course");
    benchmark::DoNotOptimize(h);
  }
  state.counters["versions"] = static_cast<double>(versions + 1);
}
BENCHMARK(BM_HistoryLookup)->Arg(10)->Arg(100)->Arg(1000);

void BM_DiffLines(benchmark::State& state) {
  const auto lines = static_cast<std::size_t>(state.range(0));
  Bytes a = make_text(lines, 1);
  Bytes b = make_text(lines, 2);
  std::string sa(a.begin(), a.end()), sb(b.begin(), b.end());
  for (auto _ : state) {
    DiffSummary d = diff_lines(sa, sb);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DiffLines)->Arg(50)->Arg(500)->Arg(2000)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E12: SCM check-in/out and version chains ===\n\n");
  // Version-chain sanity sweep.
  std::printf("%12s %12s %14s\n", "cycles", "head ver", "history rows");
  for (std::size_t cycles : {5u, 50u, 500u}) {
    ScmStore scm;
    scm.add_item("course", make_text(30, 1), "shih", 0).expect("item");
    for (std::size_t c = 0; c < cycles; ++c) {
      scm.check_out("course", UserId{1}, true, static_cast<std::int64_t>(c))
          .expect("out");
      scm.check_in("course", UserId{1}, make_text(30, c + 2), "edit",
                   static_cast<std::int64_t>(c))
          .expect("in");
    }
    std::printf("%12zu %12llu %14zu\n", cycles,
                static_cast<unsigned long long>(scm.head("course").expect("h").number),
                scm.history("course").expect("hist").size());
  }
  std::printf("\ncontention: writer holds the item; 3 rivals each get refused,\n"
              "readers still succeed:\n");
  {
    ScmStore scm;
    scm.add_item("course", make_text(30, 1), "shih", 0).expect("item");
    scm.check_out("course", UserId{1}, true, 0).expect("writer");
    int refused = 0, reads = 0;
    for (std::uint64_t u = 2; u <= 4; ++u) {
      if (scm.check_out("course", UserId{u}, true, 1).code() == Errc::lock_conflict) {
        ++refused;
      }
      if (scm.check_out("course", UserId{u + 10}, false, 1).is_ok()) ++reads;
    }
    std::printf("  refused write check-outs: %d, granted read check-outs: %d\n\n",
                refused, reads);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

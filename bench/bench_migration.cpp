// E6 — instance_migration: "duplicated document instances live only within
// a duration of time. After a lecture is presented, duplicated document
// instances migrate to document references. Essentially, buffer spaces are
// used only." (claim C5)
//
// A semester of 6 weekly lectures is broadcast to 27 stations. Two
// policies: with post-lecture migration (paper) and without (copies
// accumulate). Metric: peak and end-of-semester disk per student station.
// Paper shape: with migration, disk returns to ~0 after each lecture; the
// instructor's persistent instances are untouched.
#include <cstdio>

#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

struct SemesterResult {
  double peak_mb = 0;
  double end_mb = 0;
  double instructor_mb = 0;
};

SemesterResult run_semester(bool migrate) {
  const std::size_t kStations = 27;
  const std::size_t kLectures = 6;
  SimCluster cluster(kStations, 3, kCampusLink);
  SemesterResult out;

  for (std::size_t week = 0; week < kLectures; ++week) {
    auto doc = make_lecture("http://mmu.edu/week" + std::to_string(week), 10 << 20,
                            cluster.id(0));
    cluster.node(0).broadcast_push(doc).expect("push");
    cluster.net().run();

    // Peak disk while the lecture is live.
    double live = 0;
    for (std::size_t i = 1; i < kStations; ++i) {
      live = std::max(live, static_cast<double>(cluster.store(i).disk_bytes()) / 1e6);
    }
    out.peak_mb = std::max(out.peak_mb, live);

    if (migrate) {
      for (std::size_t i = 1; i < kStations; ++i) {
        (void)cluster.node(i).end_lecture();
      }
    }
  }

  double end = 0;
  for (std::size_t i = 1; i < kStations; ++i) {
    end = std::max(end, static_cast<double>(cluster.store(i).disk_bytes()) / 1e6);
  }
  out.end_mb = end;
  out.instructor_mb = static_cast<double>(cluster.store(0).disk_bytes()) / 1e6;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E6: post-lecture migration of duplicated instances ===\n");
  std::printf("6 weekly 10 MB lectures to 26 students (m=3)\n\n");
  std::printf("%-22s %14s %18s %18s\n", "policy", "peak disk(MB)",
              "end-of-term(MB)", "instructor(MB)");

  SemesterResult with = run_semester(true);
  SemesterResult without = run_semester(false);
  std::printf("%-22s %14.1f %18.1f %18.1f\n", "migrate-to-reference", with.peak_mb,
              with.end_mb, with.instructor_mb);
  std::printf("%-22s %14.1f %18.1f %18.1f\n", "keep-copies", without.peak_mb,
              without.end_mb, without.instructor_mb);

  std::printf("\nper-week trace (migrate-to-reference), student station 14:\n");
  {
    const std::size_t kStations = 27;
    SimCluster cluster(kStations, 3, kCampusLink);
    for (std::size_t week = 0; week < 6; ++week) {
      auto doc = make_lecture("http://mmu.edu/week" + std::to_string(week),
                              10 << 20, cluster.id(0));
      cluster.node(0).broadcast_push(doc).expect("push");
      cluster.net().run();
      double during = static_cast<double>(cluster.store(14).disk_bytes()) / 1e6;
      (void)cluster.node(14).end_lecture();
      double after = static_cast<double>(cluster.store(14).disk_bytes()) / 1e6;
      std::printf("  week %zu: %6.1f MB during lecture -> %6.1f MB after "
                  "migration (%zu reference(s) kept)\n",
                  week + 1, during, after, cluster.store(14).doc_count());
      for (std::size_t i = 1; i < kStations; ++i) {
        if (i != 14) (void)cluster.node(i).end_lecture();
      }
    }
  }
  std::printf("\nshape check: migration keeps students at reference-only disk\n"
              "between lectures; keep-copies accumulates ~10 MB per week.\n");
  return 0;
}

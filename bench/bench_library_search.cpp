// E9 — library_search: the Web-savvy virtual library's three retrieval
// modes (claim C8): matching keywords, instructor names, and course
// numbers/titles — plus the check-out ledger.
//
// Corpus sizes sweep 100..100000 entries. Paper shape: course-number and
// instructor lookups are index hits (flat, sub-microsecond); keyword search
// scales with the posting-list length of the query terms; ledger appends
// are O(1).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "library/virtual_library.hpp"

using namespace wdoc;
using namespace wdoc::library;

namespace {

const char* kTopics[] = {"multimedia", "database", "network",  "graphics",
                         "compiler",   "operating", "software", "hardware"};
const char* kInstructors[] = {"shih", "ma", "huang", "chen", "lin", "wang"};

VirtualLibrary build_library(std::size_t entries, std::uint64_t seed = 11) {
  VirtualLibrary lib;
  Rng rng(seed);
  for (std::size_t i = 0; i < entries; ++i) {
    LibraryEntry e;
    e.course_number = "CS" + std::to_string(1000 + i);
    const char* topic = kTopics[rng.uniform(std::size(kTopics))];
    const char* topic2 = kTopics[rng.uniform(std::size(kTopics))];
    e.title = std::string("Introduction to ") + topic + " systems";
    e.instructor = kInstructors[rng.uniform(std::size(kInstructors))];
    e.keywords = {topic, topic2, "virtual course"};
    e.script_name = "script-" + e.course_number;
    e.starting_url = "http://mmu.edu/" + e.course_number;
    lib.add_entry(e).expect("entry");
  }
  return lib;
}

void BM_KeywordSearch(benchmark::State& state) {
  VirtualLibrary lib = build_library(static_cast<std::size_t>(state.range(0)));
  std::size_t hits = 0;
  for (auto _ : state) {
    auto result = lib.search_keywords("multimedia systems");
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KeywordSearch)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_InstructorLookup(benchmark::State& state) {
  VirtualLibrary lib = build_library(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = lib.by_instructor("shih");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InstructorLookup)->Arg(1000)->Arg(100000);

void BM_CourseNumberLookup(benchmark::State& state) {
  VirtualLibrary lib = build_library(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = lib.by_course_number("CS1500");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CourseNumberLookup)->Arg(1000)->Arg(100000);

void BM_CheckOutIn(benchmark::State& state) {
  VirtualLibrary lib = build_library(1000);
  std::uint64_t student = 0;
  for (auto _ : state) {
    UserId u{++student};
    lib.check_out("CS1500", u, 1000).expect("out");
    lib.check_in("CS1500", u, 2000).expect("in");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2));
}
BENCHMARK(BM_CheckOutIn);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E9: virtual library retrieval modes ===\n\n");
  std::printf("%10s %14s %16s %16s\n", "entries", "kw hits", "instructor hits",
              "course-nr hit");
  for (std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    VirtualLibrary lib = build_library(n);
    auto kw = lib.search_keywords("multimedia systems");
    auto instr = lib.by_instructor("shih");
    bool exact = lib.by_course_number("CS" + std::to_string(1000 + n / 2)).has_value();
    std::printf("%10zu %14zu %16zu %16s\n", n, kw.size(), instr.size(),
                exact ? "yes" : "no");
  }
  std::printf("\ncombined ranked search, 10000 entries, query 'shih':\n");
  {
    VirtualLibrary lib = build_library(10000);
    auto hits = lib.search("shih");
    std::printf("  %zu hits; top scored %.1f (instructor boost)\n", hits.size(),
                hits.empty() ? 0.0 : hits[0].score);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

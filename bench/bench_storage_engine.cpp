// E11 — storage_engine: throughput of the embedded relational substrate on
// the paper's own schema (the "MS SQL server behind ODBC" stand-in).
//
// Measures: script-row inserts, unique-name point lookups (hash/B-tree),
// indexed secondary lookups, range scans, FK-checked inserts, transactional
// updates, and WAL-on insert cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "docmodel/schema_defs.hpp"
#include "obs/metrics.hpp"
#include "storage/sql.hpp"
#include "storage/txn.hpp"

using namespace wdoc;
using namespace wdoc::storage;

namespace {

std::vector<Value> script_row(std::size_t i) {
  return {Value("script-" + std::to_string(i)),
          Value("keywords multimedia database"),
          Value("author-" + std::to_string(i % 50)),
          Value("1.0"),
          Value(static_cast<std::int64_t>(1000 + i)),
          Value("description of course " + std::to_string(i)),
          Value::null(),
          Value(static_cast<std::int64_t>(2000 + i)),
          Value(static_cast<double>(i % 100))};
}

void BM_ScriptInsert(benchmark::State& state) {
  std::size_t i = 0;
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  for (auto _ : state) {
    auto r = db->insert(docmodel::kScriptTable, script_row(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScriptInsert);

void BM_UniqueNameLookup(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("seed");
  }
  const Table* t = db->catalog().table(docmodel::kScriptTable);
  std::size_t i = 0;
  for (auto _ : state) {
    auto hit = t->find_unique("name", Value("script-" + std::to_string(i++ % n)));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UniqueNameLookup)->Arg(1000)->Arg(100000);

void BM_SecondaryIndexLookup(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("seed");
  }
  const Table* t = db->catalog().table(docmodel::kScriptTable);
  std::size_t i = 0;
  for (auto _ : state) {
    auto hits = t->find_equal("author", Value("author-" + std::to_string(i++ % 50)));
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SecondaryIndexLookup)->Arg(10000);

void BM_RangeScan(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("seed");
  }
  const Table* t = db->catalog().table(docmodel::kScriptTable);
  for (auto _ : state) {
    Value lo("script-3000"), hi("script-4000");
    std::size_t count = 0;
    t->scan_range("name", &lo, &hi, [&](RowId, const std::vector<Value>&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RangeScan)->Unit(benchmark::kMicrosecond);

void BM_FkCheckedInsert(benchmark::State& state) {
  auto db = Database::in_memory();
  docmodel::install_schemas(*db).expect("schemas");
  db->insert(docmodel::kScriptTable, script_row(0)).expect("parent");
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = db->insert(docmodel::kImplementationTable,
                        {Value("http://mmu.edu/impl-" + std::to_string(i++)),
                         Value("script-0"), Value("author"), Value(1000),
                         Value(1)});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FkCheckedInsert);

void BM_TxnUpdateCommit(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  std::vector<RowId> rows;
  for (std::size_t i = 0; i < 1000; ++i) {
    rows.push_back(db->insert(docmodel::kScriptTable, script_row(i)).expect("seed"));
  }
  TransactionManager mgr(*db);
  std::size_t i = 0;
  for (auto _ : state) {
    auto txn = mgr.begin();
    txn->update_column(docmodel::kScriptTable, rows[i++ % rows.size()],
                       "pct_complete", Value(50.0))
        .expect("update");
    txn->commit().expect("commit");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TxnUpdateCommit);

void BM_SqlPointSelect(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  for (std::size_t i = 0; i < 10000; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("seed");
  }
  sql::Engine engine(*db);
  std::size_t i = 0;
  for (auto _ : state) {
    auto rs = engine.execute("SELECT name, pct_complete FROM wd_script WHERE name "
                             "= 'script-" +
                             std::to_string(i++ % 10000) + "'");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SqlPointSelect);

void BM_SqlAggregateGroupBy(benchmark::State& state) {
  auto db = Database::in_memory();
  db->create_table(docmodel::script_schema()).expect("schema");
  for (std::size_t i = 0; i < 10000; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("seed");
  }
  sql::Engine engine(*db);
  for (auto _ : state) {
    auto rs = engine.execute(
        "SELECT author, COUNT(*), AVG(pct_complete) FROM wd_script GROUP BY author");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SqlAggregateGroupBy)->Unit(benchmark::kMillisecond);

void BM_SqlJoin(benchmark::State& state) {
  auto db = Database::in_memory();
  docmodel::install_schemas(*db).expect("schemas");
  for (std::size_t i = 0; i < 500; ++i) {
    db->insert(docmodel::kScriptTable, script_row(i)).expect("script");
    for (int t = 0; t < 2; ++t) {
      db->insert(docmodel::kImplementationTable,
                 {Value("http://mmu.edu/s" + std::to_string(i) + "/t" +
                        std::to_string(t)),
                  Value("script-" + std::to_string(i)), Value("a"), Value(1),
                  Value(t + 1)})
          .expect("impl");
    }
  }
  sql::Engine engine(*db);
  for (auto _ : state) {
    auto rs = engine.execute(
        "SELECT wd_script.name, wd_implementation.starting_url FROM wd_script "
        "JOIN wd_implementation ON wd_script.name = wd_implementation.script_name "
        "WHERE wd_implementation.try_number = 2");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SqlJoin)->Unit(benchmark::kMillisecond);

void BM_DurableInsert(benchmark::State& state) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "wdoc-bench-durable").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto db = Database::open(dir).expect("open");
  db->create_table(docmodel::script_schema()).expect("schema");
  std::size_t i = 0;
  for (auto _ : state) {
    auto r = db->insert(docmodel::kScriptTable, script_row(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableInsert);

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics-json=<path> before google-benchmark parses the rest.
  std::string metrics_path = obs::metrics_json_arg(argc, argv);
  std::printf("=== E11: relational substrate throughput on the paper schema ===\n\n");
  // Quick capacity sanity print: the full 11-table schema loaded with a
  // plausible department's worth of content.
  {
    auto db = Database::in_memory();
    docmodel::install_schemas(*db).expect("schemas");
    for (std::size_t i = 0; i < 200; ++i) {
      db->insert(docmodel::kScriptTable, script_row(i)).expect("script");
    }
    std::printf("schema installed: %zu tables, %zu rows seeded, %zu payload bytes\n\n",
                db->catalog().table_names().size(), db->catalog().total_rows(),
                db->catalog().total_payload_bytes());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!metrics_path.empty()) {
    if (obs::write_json_file(metrics_path)) {
      std::fprintf(stderr, "metrics snapshot written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics snapshot to %s\n",
                   metrics_path.c_str());
    }
  }
  return 0;
}

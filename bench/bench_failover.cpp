// E-failover: lecture recovery under faults (the rpc-lifecycle redesign's
// headline experiment).
//
// A 13-station m=3 tree distributes a lecture while (a) the root's links
// suffer an injected loss burst and (b) the interior station at tree
// position 2 crashes mid-push, orphaning the subtree at positions 5-7. The
// orphans' rpc attempt-timeouts drive the failure detector; after the
// threshold they reparent to the grandparent (the root, by the paper's
// ⌊(k−i−1)/m⌋+1 applied twice) and the repair loop pulls the lecture
// around the dead station. Metrics: rounds and simulated time to converge,
// retry/failover counts, and repair traffic.
#include <cstdio>

#include "dist/lecture.hpp"
#include "net/fault.hpp"
#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

struct FailoverResult {
  int rounds = 0;             // repair passes until every online station holds it
  double recovery_s = 0;      // simulated time at convergence
  bool converged = false;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  std::uint64_t attempt_timeouts = 0;
  std::uint64_t exhausted = 0;
  std::uint64_t wire_mb = 0;
};

FailoverResult run_drill(double loss, bool crash) {
  // Tight lifecycle knobs so recovery happens on a seconds scale.
  dist::StationConfig cfg;
  cfg.rpc.deadline = SimTime::millis(500);
  cfg.rpc.max_retries = 3;
  cfg.rpc.backoff.initial = SimTime::millis(100);
  cfg.rpc.backoff.cap = SimTime::seconds(1);
  // Payload-scaled deadlines use the real link speed, so a 4 MB pull gets
  // ~3.4 s per attempt instead of the conservative 1 Mb/s default.
  cfg.min_bandwidth_bps = kCampusLink.up_bps;

  SimCluster cluster(13, 3, kCampusLink, cfg, /*seed=*/4242);
  auto doc = make_lecture("http://mmu.edu/failover/lec", 4 << 20, cluster.id(0));
  cluster.store(0).put_instance(doc, false).expect("instructor copy");

  net::FaultPlan plan;
  if (loss > 0.0) {
    plan.loss_bursts.push_back(
        {cluster.id(0), loss, SimTime::millis(1), SimTime::seconds(30)});
  }
  if (crash) {
    // Station index 1 = tree position 2, parent of positions 5-7.
    plan.crashes.push_back({cluster.id(1), SimTime::millis(2), SimTime::zero()});
  }
  if (!plan.empty()) cluster.net().inject(plan).expect("inject");

  std::vector<dist::StationNode*> audience;
  for (std::size_t i = 1; i < cluster.size(); ++i) audience.push_back(&cluster.node(i));
  dist::LectureSession lecture(LectureId{1}, doc, cluster.node(0), audience);
  lecture.begin().expect("begin");
  cluster.net().run();

  auto online_converged = [&] {
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      if (!cluster.node(i).online()) continue;
      if (!cluster.store(i).has_materialized(doc.doc_key)) return false;
    }
    return true;
  };

  FailoverResult r;
  while (!online_converged() && r.rounds < 60) {
    lecture.repair().expect("repair");
    cluster.net().run();
    ++r.rounds;
  }
  r.converged = online_converged();
  r.recovery_s = cluster.net().now().as_seconds();
  r.wire_mb = cluster.net().total_bytes_on_wire() >> 20;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.failovers += cluster.node(i).stats().failovers;
    const net::RpcStats st = cluster.node(i).rpc_stats();
    r.retries += st.retries;
    r.attempt_timeouts += st.attempt_timeouts;
    r.exhausted += st.exhausted;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsDump metrics(argc, argv);
  std::printf("=== E-failover: crash + loss recovery on a 13-station m=3 tree ===\n");
  std::printf("4 MB lecture; rpc deadline 500 ms, 3 retries, backoff 100 ms..1 s\n\n");
  std::printf("  %-6s %-6s %8s %12s %10s %8s %9s %10s %8s\n", "loss", "crash",
              "rounds", "recovery(s)", "failovers", "retries", "timeouts",
              "exhausted", "wire MB");

  auto& reg = obs::MetricsRegistry::global();
  for (double loss : {0.0, 0.1, 0.2}) {
    for (bool crash : {false, true}) {
      FailoverResult r = run_drill(loss, crash);
      std::printf("  %-6.2f %-6s %8d %12.2f %10llu %8llu %9llu %10llu %8llu%s\n",
                  loss, crash ? "yes" : "no", r.rounds, r.recovery_s,
                  static_cast<unsigned long long>(r.failovers),
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.attempt_timeouts),
                  static_cast<unsigned long long>(r.exhausted),
                  static_cast<unsigned long long>(r.wire_mb),
                  r.converged ? "" : "   (DID NOT CONVERGE)");
      obs::Labels labels{{"loss", std::to_string(static_cast<int>(loss * 100))},
                         {"crash", crash ? "1" : "0"}};
      reg.gauge("failover.repair_rounds", labels).set(r.rounds);
      reg.gauge("failover.recovery_ms", labels)
          .set(static_cast<std::int64_t>(r.recovery_s * 1000.0));
      reg.gauge("failover.rpc_retries", labels)
          .set(static_cast<std::int64_t>(r.retries));
      reg.gauge("failover.failovers", labels)
          .set(static_cast<std::int64_t>(r.failovers));
    }
  }

  std::printf("\nshape check: without faults recovery is one push (0 rounds);\n"
              "loss adds retries but the lifecycle layer still converges; a\n"
              "crashed interior station costs its orphans %u attempt-timeouts\n"
              "before they reparent to the grandparent and pull around it.\n",
              dist::StationConfig{}.failover_threshold);
  return 0;
}

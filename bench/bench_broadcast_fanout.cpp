// E2 — broadcast_fanout: efficiency of the m-ary pre-broadcast (claim C2).
//
// Sweeps tree fan-out m for several class sizes N and reports the simulated
// makespan (time until the last station holds the lecture) and the
// instructor-uplink bytes. Paper shape to reproduce: moderate m beats both
// the chain (m=1) and the star (unicast from the instructor) once N grows,
// because the chain pays depth x serialization and the star serializes all
// N transfers through one uplink.
//
// --swarm runs only the E2b three-way strategy sweep (store-and-forward vs
// pipelined vs swarm mode) and enforces the swarm acceptance bars: makespan
// within 1.5x the bandwidth lower bound and every station materialized.
// CI drift-checks its --metrics-json dump against BENCH_swarm.json.
#include <cstdio>
#include <cstring>

#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

struct RunResult {
  double makespan_s = 0;
  double root_mb = 0;
  std::uint64_t depth = 0;
  bool complete = false;
};

enum class Strategy { store_forward, pipelined, swarm };

RunResult run_broadcast(std::size_t n, std::uint64_t m, std::uint64_t lecture_bytes,
                        Strategy strategy) {
  dist::StationConfig cfg;
  cfg.chunk.enabled = strategy != Strategy::store_forward;
  if (strategy == Strategy::swarm) {
    cfg.swarm.enabled = true;
    cfg.swarm.trees = static_cast<std::uint32_t>(m);
  }
  SimCluster cluster(n, m, kCampusLink, cfg);
  auto doc = make_lecture("http://mmu.edu/lecture", lecture_bytes, cluster.id(0));
  cluster.node(0).broadcast_push(doc).expect("push");
  cluster.net().run();
  RunResult out;
  // Swarm gossip idles on for a few rounds after the last delivery, so
  // makespan is the slowest station's delivery time, not net.now().
  if (strategy == Strategy::swarm) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      out.makespan_s =
          std::max(out.makespan_s, cluster.node(i).last_delivery().as_seconds());
    }
  } else {
    out.makespan_s = cluster.net().now().as_seconds();
  }
  out.root_mb = static_cast<double>(cluster.net().stats(cluster.id(0)).bytes_sent) / 1e6;
  out.depth = dist::tree_depth(n, m);
  out.complete = cluster.count_materialized(doc.doc_key) == n;
  return out;
}

RunResult run_broadcast(std::size_t n, std::uint64_t m, std::uint64_t lecture_bytes,
                        bool chunked) {
  return run_broadcast(n, m, lecture_bytes,
                       chunked ? Strategy::pipelined : Strategy::store_forward);
}

// E2b: the swarm acceptance sweep (ISSUE 10). One 10 MB lecture to N=63
// stations, three strategies on identical links. The bandwidth lower bound
// is the VoD-paper floor for any single-source distribution on homogeneous
// links: every receiver must pull all B bytes through its downlink, and the
// source must push all B bytes at least once through its uplink, so
// T* >= 8B / min(up, down). Swarm mode must land within 1.5x of it.
int run_swarm_sweep() {
  const std::size_t n = 63;
  const std::uint64_t m = 2;
  const std::uint64_t lecture_bytes = 10 << 20;
  const double bound_s = 8.0 * static_cast<double>(lecture_bytes) /
                         std::min(kCampusLink.up_bps, kCampusLink.down_bps);
  std::printf("=== E2b: strategy sweep at N=%zu, m=%llu (10 MB lecture) ===\n", n,
              static_cast<unsigned long long>(m));
  std::printf("bandwidth lower bound: %.2f s\n\n", bound_s);
  std::printf("  %18s %12s %12s %10s\n", "strategy", "makespan(s)", "vs bound",
              "complete");
  struct Row {
    const char* name;
    Strategy strategy;
  };
  const Row rows[] = {{"store-and-forward", Strategy::store_forward},
                      {"pipelined", Strategy::pipelined},
                      {"swarm", Strategy::swarm}};
  double swarm_ratio = 0;
  bool all_complete = true;
  for (const Row& row : rows) {
    RunResult r = run_broadcast(n, m, lecture_bytes, row.strategy);
    const double ratio = r.makespan_s / bound_s;
    std::printf("  %18s %12.2f %11.2fx %10s\n", row.name, r.makespan_s, ratio,
                r.complete ? "yes" : "NO");
    if (row.strategy == Strategy::swarm) swarm_ratio = ratio;
    all_complete = all_complete && r.complete;
  }
  std::printf("\n");
  if (!all_complete) {
    std::printf("FAIL: a strategy left stations without the lecture\n");
    return 1;
  }
  if (swarm_ratio > 1.5) {
    std::printf("FAIL: swarm makespan %.2fx the bandwidth bound (budget 1.5x)\n",
                swarm_ratio);
    return 1;
  }
  std::printf("swarm makespan within %.2fx of the bandwidth lower bound (<= 1.5x)\n",
              swarm_ratio);
  return 0;
}

// Strips --swarm from argv.
bool swarm_arg(int& argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--swarm") == 0) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsDump metrics(argc, argv);
  if (swarm_arg(argc, argv)) return run_swarm_sweep();
  std::printf("=== E2: pre-broadcast makespan vs tree fan-out m ===\n");
  std::printf("10 MB lecture, 10 Mb/s station links, 30 ms RTT\n\n");
  const std::uint64_t lecture_bytes = 10 << 20;

  // 1023 at m=2 is a depth-9 tree — the regime the O(log n) event fabric
  // and zero-copy relay were built for.
  for (std::size_t n : {15u, 63u, 255u, 1023u}) {
    std::printf("N = %zu stations\n", n);
    std::printf("  %10s %8s %14s %14s %9s %18s %10s\n", "m", "depth",
                "store-fwd(s)", "pipelined(s)", "speedup", "root uplink(MB)",
                "complete");
    double chain = 0, best = 1e18, star = 0;
    std::uint64_t best_m = 1;
    for (std::uint64_t m : {1ull, 2ull, 3ull, 4ull, 8ull,
                            static_cast<unsigned long long>(n - 1)}) {
      RunResult sf = run_broadcast(n, m, lecture_bytes, /*chunked=*/false);
      RunResult pl = run_broadcast(n, m, lecture_bytes, /*chunked=*/true);
      const char* tag = m == 1 ? "chain" : (m == n - 1 ? "star" : "");
      std::printf("  %4llu %5s %8llu %14.2f %14.2f %8.1fx %18.1f %10s\n",
                  static_cast<unsigned long long>(m), tag,
                  static_cast<unsigned long long>(sf.depth), sf.makespan_s,
                  pl.makespan_s, sf.makespan_s / pl.makespan_s, pl.root_mb,
                  (sf.complete && pl.complete) ? "yes" : "NO");
      if (m == 1) chain = pl.makespan_s;
      if (m == n - 1) star = pl.makespan_s;
      if (pl.makespan_s < best) {
        best = pl.makespan_s;
        best_m = m;
      }
    }
    std::printf("  -> best m = %llu (pipelined): %.1fx faster than the chain, "
                "%.1fx faster than the star\n\n",
                static_cast<unsigned long long>(best_m), chain / best, star / best);
  }

  std::printf("model cross-check: estimate_makespan_s argmin (choose_m) per N\n");
  for (std::size_t n : {15u, 63u, 255u, 1023u}) {
    std::printf("  N=%5zu -> choose_m = %llu\n", n,
                static_cast<unsigned long long>(
                    dist::choose_m(n, lecture_bytes, kCampusLink.up_bps, 0.03)));
  }
  return 0;
}

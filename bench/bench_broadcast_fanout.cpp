// E2 — broadcast_fanout: efficiency of the m-ary pre-broadcast (claim C2).
//
// Sweeps tree fan-out m for several class sizes N and reports the simulated
// makespan (time until the last station holds the lecture) and the
// instructor-uplink bytes. Paper shape to reproduce: moderate m beats both
// the chain (m=1) and the star (unicast from the instructor) once N grows,
// because the chain pays depth x serialization and the star serializes all
// N transfers through one uplink.
#include <cstdio>

#include "sim_cluster.hpp"

using namespace wdoc;
using namespace wdoc::bench;

namespace {

struct RunResult {
  double makespan_s = 0;
  double root_mb = 0;
  std::uint64_t depth = 0;
  bool complete = false;
};

RunResult run_broadcast(std::size_t n, std::uint64_t m, std::uint64_t lecture_bytes,
                        bool chunked) {
  dist::StationConfig cfg;
  cfg.chunk.enabled = chunked;
  SimCluster cluster(n, m, kCampusLink, cfg);
  auto doc = make_lecture("http://mmu.edu/lecture", lecture_bytes, cluster.id(0));
  cluster.node(0).broadcast_push(doc).expect("push");
  cluster.net().run();
  RunResult out;
  out.makespan_s = cluster.net().now().as_seconds();
  out.root_mb = static_cast<double>(cluster.net().stats(cluster.id(0)).bytes_sent) / 1e6;
  out.depth = dist::tree_depth(n, m);
  out.complete = cluster.count_materialized(doc.doc_key) == n;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  MetricsDump metrics(argc, argv);
  std::printf("=== E2: pre-broadcast makespan vs tree fan-out m ===\n");
  std::printf("10 MB lecture, 10 Mb/s station links, 30 ms RTT\n\n");
  const std::uint64_t lecture_bytes = 10 << 20;

  // 1023 at m=2 is a depth-9 tree — the regime the O(log n) event fabric
  // and zero-copy relay were built for.
  for (std::size_t n : {15u, 63u, 255u, 1023u}) {
    std::printf("N = %zu stations\n", n);
    std::printf("  %10s %8s %14s %14s %9s %18s %10s\n", "m", "depth",
                "store-fwd(s)", "pipelined(s)", "speedup", "root uplink(MB)",
                "complete");
    double chain = 0, best = 1e18, star = 0;
    std::uint64_t best_m = 1;
    for (std::uint64_t m : {1ull, 2ull, 3ull, 4ull, 8ull,
                            static_cast<unsigned long long>(n - 1)}) {
      RunResult sf = run_broadcast(n, m, lecture_bytes, /*chunked=*/false);
      RunResult pl = run_broadcast(n, m, lecture_bytes, /*chunked=*/true);
      const char* tag = m == 1 ? "chain" : (m == n - 1 ? "star" : "");
      std::printf("  %4llu %5s %8llu %14.2f %14.2f %8.1fx %18.1f %10s\n",
                  static_cast<unsigned long long>(m), tag,
                  static_cast<unsigned long long>(sf.depth), sf.makespan_s,
                  pl.makespan_s, sf.makespan_s / pl.makespan_s, pl.root_mb,
                  (sf.complete && pl.complete) ? "yes" : "NO");
      if (m == 1) chain = pl.makespan_s;
      if (m == n - 1) star = pl.makespan_s;
      if (pl.makespan_s < best) {
        best = pl.makespan_s;
        best_m = m;
      }
    }
    std::printf("  -> best m = %llu (pipelined): %.1fx faster than the chain, "
                "%.1fx faster than the star\n\n",
                static_cast<unsigned long long>(best_m), chain / best, star / best);
  }

  std::printf("model cross-check: estimate_makespan_s argmin (choose_m) per N\n");
  for (std::size_t n : {15u, 63u, 255u, 1023u}) {
    std::printf("  N=%5zu -> choose_m = %llu\n", n,
                static_cast<unsigned long long>(
                    dist::choose_m(n, lecture_bytes, kCampusLink.up_bps, 0.03)));
  }
  return 0;
}

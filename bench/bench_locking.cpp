// E7 — lock_concurrency: the paper's compatibility table vs coarser
// alternatives (claim C6).
//
// A collaborative-editing mix (readers + writers over a 3-level course
// tree) replays against three lock designs:
//   paper-table    — HierarchyLockManager (read container => components
//                    readable, parents fully accessible);
//   tree-exclusive — any access takes an exclusive lock on the whole tree;
//   tree-rwlock    — readers share the whole tree, any writer excludes all.
// Metrics: operations granted first try (grant rate) and wall-clock
// throughput. Paper shape: the table grants strictly more concurrency than
// both baselines, and the gap widens as the write fraction falls.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "locking/hierarchy_lock.hpp"
#include "workload/patterns.hpp"

using namespace wdoc;
using namespace wdoc::locking;

namespace {

// Builds script -> 4 implementations -> 4 files each; returns leaf ids.
std::vector<LockResourceId> build_tree(HierarchyLockManager& mgr) {
  std::uint64_t next = 1;
  LockResourceId root{next++};
  mgr.add_node(root, std::nullopt).expect("root");
  std::vector<LockResourceId> leaves;
  for (int i = 0; i < 4; ++i) {
    LockResourceId impl{next++};
    mgr.add_node(impl, root).expect("impl");
    for (int f = 0; f < 4; ++f) {
      LockResourceId file{next++};
      mgr.add_node(file, impl).expect("file");
      leaves.push_back(file);
    }
  }
  return leaves;
}

enum class Design { paper_table, tree_exclusive, tree_rwlock };

const char* design_name(Design d) {
  switch (d) {
    case Design::paper_table: return "paper-table";
    case Design::tree_exclusive: return "tree-exclusive";
    case Design::tree_rwlock: return "tree-rwlock";
  }
  return "?";
}

// Replays the op stream; each op tries to lock, and on success immediately
// unlocks (think: short edit). Returns the first-try grant rate.
double replay(Design design, const std::vector<workload::EditOp>& ops) {
  HierarchyLockManager mgr;
  std::vector<LockResourceId> leaves = build_tree(mgr);
  LockResourceId root{1};

  // Holders simulate K concurrent sessions: every 8th op holds its lock
  // until 8 ops later, creating contention windows.
  struct Held {
    UserId user;
    LockResourceId node;
  };
  std::vector<Held> held;
  std::size_t granted = 0;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    // Release the oldest held lock every 8 ops.
    if (i % 8 == 0 && !held.empty()) {
      (void)mgr.unlock(held.front().user, held.front().node);  // may be re-entrant dup
      held.erase(held.begin());
    }
    const workload::EditOp& op = ops[i];
    LockResourceId target = root;
    Access mode = Access::read;
    switch (design) {
      case Design::paper_table:
        target = leaves[op.node_index % leaves.size()];
        mode = op.write ? Access::write : Access::read;
        break;
      case Design::tree_exclusive:
        target = root;
        mode = Access::write;  // everything is exclusive on the root
        break;
      case Design::tree_rwlock:
        target = root;
        mode = op.write ? Access::write : Access::read;
        break;
    }
    if (mgr.lock(op.user, target, mode).is_ok()) {
      ++granted;
      if (i % 8 == 3) {
        held.push_back(Held{op.user, target});  // hold a while
      } else {
        (void)mgr.unlock(op.user, target);
      }
    }
  }
  return static_cast<double>(granted) / static_cast<double>(ops.size());
}

void BM_LockReplay(benchmark::State& state) {
  auto design = static_cast<Design>(state.range(0));
  double write_fraction = static_cast<double>(state.range(1)) / 100.0;
  auto ops = workload::editing_workload(6, 16, 4096, write_fraction, 7);
  double rate = 0;
  for (auto _ : state) {
    rate = replay(design, ops);
    benchmark::DoNotOptimize(rate);
  }
  state.counters["grant_rate"] = rate;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * ops.size()));
  state.SetLabel(design_name(design));
}
BENCHMARK(BM_LockReplay)
    ->ArgsProduct({{0, 1, 2}, {5, 25, 50}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E7: paper lock table vs coarse locking ===\n");
  std::printf("6 instructors, 16 leaf objects, 4096 ops; first-try grant rate\n\n");
  std::printf("%16s %12s %12s %12s\n", "write fraction", "paper-table",
              "tree-excl", "tree-rwlock");
  for (int pct : {5, 10, 25, 50, 75}) {
    auto ops = workload::editing_workload(6, 16, 4096,
                                          static_cast<double>(pct) / 100.0, 7);
    std::printf("%15d%% %12.3f %12.3f %12.3f\n", pct,
                replay(Design::paper_table, ops), replay(Design::tree_exclusive, ops),
                replay(Design::tree_rwlock, ops));
  }
  std::printf("\nshape check: the paper's table dominates at every mix; the gap\n"
              "vs tree-rwlock widens as writes rise (disjoint-subtree writers\n"
              "coexist under the table but serialize under a tree rwlock).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
